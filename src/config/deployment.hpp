// Deployment configuration: the output of the paper's Configuration
// Extractor (§7).
//
// The paper crawls the SmartThings management web app to obtain (i) the
// installed devices, (ii) the installed smart apps, and (iii) each app's
// configuration, plus device-association info ("this outlet controls the
// AC") supplied by the user.  iotsan consumes the same information from a
// JSON document (or builds it programmatically), described here.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace iotsan::config {

/// One installed device: unique id, a device-type name from
/// devices::DeviceTypeRegistry, and role associations used to bind safety
/// properties ("mainDoorLock", "heaterOutlet", "acOutlet", ...).
struct DeviceConfig {
  std::string id;
  std::string type;
  std::vector<std::string> roles;
};

/// The value bound to one app input.  Exactly one of the alternatives is
/// set, mirroring the input's declared type (capability inputs bind
/// device ids; number/decimal bind a number; enum/text/mode/phone bind a
/// string; bool binds a flag).
struct Binding {
  std::vector<std::string> device_ids;
  std::optional<double> number;
  std::optional<std::string> text;
  std::optional<bool> flag;

  bool IsDeviceBinding() const { return !device_ids.empty(); }
};

/// One installed app instance: which corpus/app source it runs and how
/// its inputs are bound.  The same app may be installed multiple times
/// with different configurations (paper §1: apps installed by several
/// family members).
struct AppConfig {
  /// App source name: resolved against the corpus or user-supplied files.
  std::string app;
  /// Optional instance label to distinguish multiple installs.
  std::string label;
  std::map<std::string, Binding> inputs;
};

/// A complete IoT system configuration.
struct Deployment {
  std::string name;
  std::vector<DeviceConfig> devices;
  std::vector<AppConfig> apps;
  /// Location modes; first entry is the initial mode.
  std::vector<std::string> modes = {"Home", "Away", "Night"};
  /// Phone number the user configured for notifications; the information
  /// leakage property checks SMS recipients against it (§3).
  std::string contact_phone;
  /// Whether the user allows apps to use raw network interfaces
  /// (httpPost & co.); when false their use is an information-leakage
  /// violation (§3).
  bool allow_network_interfaces = false;

  const DeviceConfig* FindDevice(const std::string& id) const;
  std::vector<std::string> DevicesWithRole(const std::string& role) const;
  int ModeIndex(const std::string& mode) const;
};

/// Parses a Deployment from its JSON form:
/// {
///   "name": "...",
///   "modes": ["Home","Away","Night"],
///   "contactPhone": "555-0100",
///   "devices": [{"id": "doorLock", "type": "smartLock",
///                "roles": ["mainDoorLock"]}, ...],
///   "apps": [{"app": "Unlock Door",
///             "inputs": {"lock": ["doorLock"], "setpoint": 75,
///                        "mode": "cool", "notify": true}}, ...]
/// }
/// Throws iotsan::ConfigError on unknown device types or malformed input.
Deployment ParseDeployment(const json::Value& doc);

/// Convenience: parse from JSON text.
Deployment ParseDeploymentText(std::string_view text);

/// Serializes a deployment back to JSON (used by the attribution module
/// when suggesting safe configurations).
json::Value DeploymentToJson(const Deployment& deployment);

/// Stable 64-bit fingerprint of a deployment configuration (FNV-1a over
/// its canonical JSON form).  Embedded in violation-artifact manifests so
/// a replay against a different configuration is detected up-front.
std::uint64_t DeploymentFingerprint(const Deployment& deployment);

/// The fingerprint as the 16-hex-digit string artifacts carry.
std::string DeploymentFingerprintHex(const Deployment& deployment);

}  // namespace iotsan::config
