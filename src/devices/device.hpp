// Device instances and their mutable state.
//
// A Device is the static description of one installed physical device
// (its id, type, and role associations from the Configuration Extractor,
// paper §7).  DeviceState is its mutable part — attribute values plus the
// online/offline failure flag (§8) — kept separate because the model
// checker snapshots and restores states millions of times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "devices/device_type.hpp"

namespace iotsan::devices {

/// Static description of one installed device.
class Device {
 public:
  /// `roles` carries device-association info ("mainDoorLock",
  /// "heaterOutlet") used to bind safety properties (paper §7-§8).
  Device(std::string id, const DeviceTypeSpec& type,
         std::vector<std::string> roles = {});

  const std::string& id() const { return id_; }
  const DeviceTypeSpec& type() const { return *type_; }
  const std::vector<std::string>& roles() const { return roles_; }
  bool HasRole(const std::string& role) const;

  /// Flattened attribute list (stable order; indexes into DeviceState).
  const std::vector<const AttributeSpec*>& attributes() const {
    return attributes_;
  }
  /// Index of `name` in attributes(); -1 if absent.
  int AttributeIndex(const std::string& name) const;

  /// Initial state: every attribute at its first domain value, online.
  struct State MakeInitialState() const;

 private:
  std::string id_;
  const DeviceTypeSpec* type_;
  std::vector<std::string> roles_;
  std::vector<const AttributeSpec*> attributes_;
};

/// Mutable state of one device.
///
/// `values` is the *cyber* state — what the platform and apps see.
/// `physical` is the ground truth of the physical space.  The two diverge
/// exactly when a device/communication failure makes a sensor miss a
/// physical event (paper §8/§10.2): the temperature really dropped but
/// the offline sensor still reports the old reading.  Safety properties
/// are statements about the physical space (§3), so the checker evaluates
/// them over `physical`; apps read `values`.
struct State {
  std::vector<std::int16_t> values;
  std::vector<std::int16_t> physical;
  bool online = true;

  bool operator==(const State&) const = default;
};

using DeviceState = State;

}  // namespace iotsan::devices
