// Capability model (paper §2.1, §8).
//
// SmartThings devices expose *capabilities* ("switch", "lock",
// "motionSensor", ...).  A capability defines attributes (observable
// state) and commands (actuations).  Smart apps are configured against
// capabilities (`input "outlets", "capability.switch"`) and subscribe to
// attribute events ("motion.active").
//
// For model checking, every attribute has a *finite* domain: enumerated
// attributes list their symbolic values; numeric attributes list the
// representative values the event generator enumerates (the paper lets
// Spin enumerate all event permutations; finite domains are what make
// that possible).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iotsan::devices {

enum class AttributeKind : std::uint8_t { kEnum, kNumeric };

struct AttributeSpec {
  std::string name;            // "switch", "temperature"
  AttributeKind kind = AttributeKind::kEnum;
  /// Symbolic values for kEnum (first is the initial state).
  std::vector<std::string> values;
  /// Representative values for kNumeric (first is the initial state).
  std::vector<int> numeric_values;

  int domain_size() const {
    return static_cast<int>(kind == AttributeKind::kEnum
                                ? values.size()
                                : numeric_values.size());
  }

  /// Index of a symbolic value; -1 if unknown.
  int IndexOfValue(const std::string& value) const;
  /// Index of the numeric value closest to `value`.
  int IndexOfNumeric(int value) const;
  /// Rendering of the value at `index` ("on", "72").
  std::string ValueName(int index) const;
  /// Raw numeric value at `index` (kNumeric only).
  int NumericAt(int index) const;
};

struct CommandSpec {
  std::string name;        // "on", "setLevel", "setThermostatMode"
  std::string attribute;   // attribute the command drives
  /// For argument-less commands: the symbolic value the attribute takes.
  std::string value;
  /// True for commands like setLevel(50) whose argument is the new value.
  bool takes_argument = false;
  /// Commands that conflict with this one on the same actuator within a
  /// single external-event cascade ("on" vs "off"): used by the
  /// free-of-conflicting-commands property (paper §8).
  std::vector<std::string> conflicts_with;
};

/// A capability: named bundle of attributes and commands.
struct CapabilitySpec {
  std::string name;        // "switch", "temperatureMeasurement"
  std::vector<AttributeSpec> attributes;
  std::vector<CommandSpec> commands;
  /// True if the physical environment (not apps) can change the attribute
  /// (sensors); such attributes are event-generator inputs.
  bool sensor = false;

  const AttributeSpec* FindAttribute(const std::string& name) const;
  const CommandSpec* FindCommand(const std::string& name) const;
};

/// Registry of all built-in capabilities.  Immutable after construction.
class CapabilityRegistry {
 public:
  /// The process-wide registry of SmartThings-equivalent capabilities.
  static const CapabilityRegistry& Instance();

  const CapabilitySpec* Find(const std::string& name) const;
  const std::vector<CapabilitySpec>& All() const { return capabilities_; }

 private:
  CapabilityRegistry();
  std::vector<CapabilitySpec> capabilities_;
};

}  // namespace iotsan::devices
