// Device types: concrete products as bundles of capabilities.
//
// The paper's Model Generator "currently supports 30 different IoT
// devices" (§8).  Each device type here corresponds to a class of
// SmartThings-compatible hardware (SmartSense Multi, smart outlet, Z-Wave
// lock, ...) and is defined purely by the capabilities it exposes.
#pragma once

#include <string>
#include <vector>

#include "devices/capability.hpp"

namespace iotsan::devices {

struct DeviceTypeSpec {
  std::string name;          // "smartOutlet", "multiSensor", ...
  std::string display_name;  // "Smart Power Outlet"
  std::vector<std::string> capabilities;

  /// True if any capability is a sensing capability.
  bool IsSensor() const;
  /// True if any capability has commands.
  bool IsActuator() const;
  /// True if this type exposes `capability` (the "actuator" marker
  /// capability matches every type with commands).
  bool HasCapability(const std::string& capability) const;

  /// All attribute specs across capabilities, in declaration order.
  std::vector<const AttributeSpec*> Attributes() const;
  const AttributeSpec* FindAttribute(const std::string& name) const;
  /// First command with this name across capabilities.
  const CommandSpec* FindCommand(const std::string& name) const;
};

/// Registry of the built-in device types.
class DeviceTypeRegistry {
 public:
  static const DeviceTypeRegistry& Instance();

  const DeviceTypeSpec* Find(const std::string& name) const;
  const std::vector<DeviceTypeSpec>& All() const { return types_; }

 private:
  DeviceTypeRegistry();
  std::vector<DeviceTypeSpec> types_;
};

}  // namespace iotsan::devices
