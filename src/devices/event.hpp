// Cyber events (paper Fig. 2).
//
// Sensors convert physical events into cyber events; actuators emit state
// update events after executing commands; the platform emits location-mode
// changes, app-touch events, and timer fires.  A single Event value covers
// all of these so the model's dispatch queue is homogeneous.
#pragma once

#include <cstdint>
#include <string>

#include "devices/device.hpp"

namespace iotsan::devices {

enum class EventSource : std::uint8_t {
  kDevice,        // device attribute changed (sensor reading or actuator ack)
  kLocationMode,  // location.mode changed
  kAppTouch,      // user tapped the app in the companion app
  kTimer,         // a schedule()/runIn() timer fired
};

struct Event {
  EventSource source = EventSource::kDevice;
  /// kDevice: index into the system's device table.
  int device = -1;
  /// kDevice: index into the device's attribute list.
  int attribute = -1;
  /// kDevice: new value index; kLocationMode: new mode index.
  int value = 0;
  /// kAppTouch / kTimer: index of the app touched / owning the timer.
  int app = -1;
  /// kTimer: which schedule within the app fired.
  int timer = -1;
  /// True when this event was injected by an app (sendEvent) rather than
  /// observed from a device — security-sensitive fake events (§8).
  bool synthetic = false;

  bool operator==(const Event&) const = default;
};

/// "presence/notpresent"-style rendering given the source device.
std::string DescribeDeviceEvent(const Device& device, const Event& event);

}  // namespace iotsan::devices
