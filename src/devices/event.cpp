#include "devices/event.hpp"

namespace iotsan::devices {

std::string DescribeDeviceEvent(const Device& device, const Event& event) {
  if (event.attribute < 0 ||
      event.attribute >= static_cast<int>(device.attributes().size())) {
    return device.id() + "/?";
  }
  const AttributeSpec& attr = *device.attributes()[event.attribute];
  return attr.name + "/" + attr.ValueName(event.value);
}

}  // namespace iotsan::devices
