#include "devices/device.hpp"

namespace iotsan::devices {

Device::Device(std::string id, const DeviceTypeSpec& type,
               std::vector<std::string> roles)
    : id_(std::move(id)), type_(&type), roles_(std::move(roles)) {
  attributes_ = type.Attributes();
}

bool Device::HasRole(const std::string& role) const {
  for (const std::string& r : roles_) {
    if (r == role) return true;
  }
  return false;
}

int Device::AttributeIndex(const std::string& name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i]->name == name) return static_cast<int>(i);
  }
  return -1;
}

State Device::MakeInitialState() const {
  State state;
  state.values.assign(attributes_.size(), 0);
  state.physical.assign(attributes_.size(), 0);
  state.online = true;
  return state;
}

}  // namespace iotsan::devices
