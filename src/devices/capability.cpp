#include "devices/capability.hpp"

#include <cstdlib>

namespace iotsan::devices {

int AttributeSpec::IndexOfValue(const std::string& value) const {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] == value) return static_cast<int>(i);
  }
  return -1;
}

int AttributeSpec::IndexOfNumeric(int value) const {
  int best = 0;
  int best_distance = -1;
  for (std::size_t i = 0; i < numeric_values.size(); ++i) {
    const int distance = std::abs(numeric_values[i] - value);
    if (best_distance < 0 || distance < best_distance) {
      best_distance = distance;
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::string AttributeSpec::ValueName(int index) const {
  if (kind == AttributeKind::kEnum) {
    if (index >= 0 && index < static_cast<int>(values.size())) {
      return values[index];
    }
    return "?";
  }
  if (index >= 0 && index < static_cast<int>(numeric_values.size())) {
    return std::to_string(numeric_values[index]);
  }
  return "?";
}

int AttributeSpec::NumericAt(int index) const {
  if (index >= 0 && index < static_cast<int>(numeric_values.size())) {
    return numeric_values[index];
  }
  return 0;
}

const AttributeSpec* CapabilitySpec::FindAttribute(
    const std::string& attr_name) const {
  for (const AttributeSpec& a : attributes) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

const CommandSpec* CapabilitySpec::FindCommand(
    const std::string& command_name) const {
  for (const CommandSpec& c : commands) {
    if (c.name == command_name) return &c;
  }
  return nullptr;
}

namespace {

AttributeSpec EnumAttr(std::string name, std::vector<std::string> values) {
  AttributeSpec a;
  a.name = std::move(name);
  a.kind = AttributeKind::kEnum;
  a.values = std::move(values);
  return a;
}

AttributeSpec NumAttr(std::string name, std::vector<int> values) {
  AttributeSpec a;
  a.name = std::move(name);
  a.kind = AttributeKind::kNumeric;
  a.numeric_values = std::move(values);
  return a;
}

CommandSpec Cmd(std::string name, std::string attribute, std::string value,
                std::vector<std::string> conflicts = {}) {
  CommandSpec c;
  c.name = std::move(name);
  c.attribute = std::move(attribute);
  c.value = std::move(value);
  c.conflicts_with = std::move(conflicts);
  return c;
}

CommandSpec ArgCmd(std::string name, std::string attribute) {
  CommandSpec c;
  c.name = std::move(name);
  c.attribute = std::move(attribute);
  c.takes_argument = true;
  return c;
}

}  // namespace

CapabilityRegistry::CapabilityRegistry() {
  // --- Actuation capabilities -------------------------------------------
  {
    CapabilitySpec cap;
    cap.name = "switch";
    cap.attributes = {EnumAttr("switch", {"off", "on"})};
    cap.commands = {Cmd("on", "switch", "on", {"off"}),
                    Cmd("off", "switch", "off", {"on"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "switchLevel";
    cap.attributes = {NumAttr("level", {0, 25, 50, 75, 100})};
    cap.commands = {ArgCmd("setLevel", "level")};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "lock";
    cap.attributes = {EnumAttr("lock", {"locked", "unlocked"})};
    cap.commands = {Cmd("lock", "lock", "locked", {"unlock"}),
                    Cmd("unlock", "lock", "unlocked", {"lock"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "doorControl";
    cap.attributes = {EnumAttr("door", {"closed", "open"})};
    cap.commands = {Cmd("open", "door", "open", {"close"}),
                    Cmd("close", "door", "closed", {"open"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "alarm";
    // Combo units (smoke siren/strobe) can trigger locally without a hub
    // command, so the alarm state is also an environment-driven input.
    cap.sensor = true;
    cap.attributes = {EnumAttr("alarm", {"off", "siren", "strobe", "both"})};
    cap.commands = {Cmd("siren", "alarm", "siren", {"off"}),
                    Cmd("strobe", "alarm", "strobe", {"off"}),
                    Cmd("both", "alarm", "both", {"off"}),
                    Cmd("off", "alarm", "off", {"siren", "strobe", "both"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "valve";
    cap.attributes = {EnumAttr("valve", {"closed", "open"})};
    cap.commands = {Cmd("open", "valve", "open", {"close"}),
                    Cmd("close", "valve", "closed", {"open"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "thermostat";
    cap.attributes = {EnumAttr("thermostatMode", {"off", "heat", "cool", "auto"}),
                      NumAttr("heatingSetpoint", {65, 70, 75}),
                      NumAttr("coolingSetpoint", {70, 75, 80})};
    cap.commands = {Cmd("heat", "thermostatMode", "heat", {"cool", "off"}),
                    Cmd("cool", "thermostatMode", "cool", {"heat", "off"}),
                    Cmd("auto", "thermostatMode", "auto", {"off"}),
                    Cmd("off", "thermostatMode", "off",
                        {"heat", "cool", "auto"}),
                    ArgCmd("setHeatingSetpoint", "heatingSetpoint"),
                    ArgCmd("setCoolingSetpoint", "coolingSetpoint"),
                    ArgCmd("setThermostatMode", "thermostatMode")};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "colorControl";
    cap.attributes = {EnumAttr("color", {"white", "red", "green", "blue"})};
    cap.commands = {ArgCmd("setColor", "color")};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "musicPlayer";
    cap.attributes = {EnumAttr("status", {"stopped", "playing"})};
    cap.commands = {Cmd("play", "status", "playing", {"stop"}),
                    Cmd("stop", "status", "stopped", {"play"}),
                    Cmd("playText", "status", "playing", {"stop"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "imageCapture";
    cap.attributes = {EnumAttr("image", {"none", "taken"})};
    cap.commands = {Cmd("take", "image", "taken")};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "windowShade";
    cap.attributes = {EnumAttr("windowShade", {"closed", "open"})};
    cap.commands = {Cmd("open", "windowShade", "open", {"close"}),
                    Cmd("close", "windowShade", "closed", {"open"})};
    capabilities_.push_back(std::move(cap));
  }

  // --- Sensing capabilities ----------------------------------------------
  {
    CapabilitySpec cap;
    cap.name = "motionSensor";
    cap.sensor = true;
    cap.attributes = {EnumAttr("motion", {"inactive", "active"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "contactSensor";
    cap.sensor = true;
    cap.attributes = {EnumAttr("contact", {"closed", "open"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "presenceSensor";
    cap.sensor = true;
    // "notpresent" matches the event rendering in the paper's Fig. 7 log.
    cap.attributes = {EnumAttr("presence", {"present", "notpresent"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "temperatureMeasurement";
    cap.sensor = true;
    cap.attributes = {NumAttr("temperature", {70, 60, 80, 90})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "relativeHumidityMeasurement";
    cap.sensor = true;
    cap.attributes = {NumAttr("humidity", {50, 30, 70})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "illuminanceMeasurement";
    cap.sensor = true;
    cap.attributes = {NumAttr("illuminance", {300, 10, 1000})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "smokeDetector";
    cap.sensor = true;
    cap.attributes = {EnumAttr("smoke", {"clear", "detected", "tested"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "carbonMonoxideDetector";
    cap.sensor = true;
    cap.attributes = {
        EnumAttr("carbonMonoxide", {"clear", "detected", "tested"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "waterSensor";
    cap.sensor = true;
    cap.attributes = {EnumAttr("water", {"dry", "wet"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "soilMoistureMeasurement";
    cap.sensor = true;
    cap.attributes = {NumAttr("soilMoisture", {40, 10, 70})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "accelerationSensor";
    cap.sensor = true;
    cap.attributes = {EnumAttr("acceleration", {"inactive", "active"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "threeAxis";
    cap.sensor = true;
    cap.attributes = {EnumAttr("orientation", {"flat", "tilted"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "button";
    cap.sensor = true;
    cap.attributes = {EnumAttr("button", {"released", "pushed", "held"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "sleepSensor";
    cap.sensor = true;
    cap.attributes = {EnumAttr("sleeping", {"notSleeping", "sleeping"})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "battery";
    cap.sensor = true;
    cap.attributes = {NumAttr("battery", {100, 50, 10})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "powerMeter";
    cap.sensor = true;
    cap.attributes = {NumAttr("power", {0, 100, 1500})};
    capabilities_.push_back(std::move(cap));
  }
  {
    CapabilitySpec cap;
    cap.name = "energyMeter";
    cap.sensor = true;
    cap.attributes = {NumAttr("energy", {0, 10})};
    capabilities_.push_back(std::move(cap));
  }
  // VoIP call service (used by the IFTTT front-end's phone-call actions,
  // paper §11 / Table 9).
  {
    CapabilitySpec cap;
    cap.name = "voiceCall";
    cap.attributes = {EnumAttr("call", {"idle", "ringing"})};
    cap.commands = {Cmd("ring", "call", "ringing", {"hangup"}),
                    Cmd("hangup", "call", "idle", {"ring"})};
    capabilities_.push_back(std::move(cap));
  }
  // Marker capability carried by smart power outlets, so apps can ask for
  // "an outlet" specifically (capability.outlet in SmartThings).
  {
    CapabilitySpec cap;
    cap.name = "outlet";
    capabilities_.push_back(std::move(cap));
  }
  // Marker capability used by `input "x", "device.*"` style inputs and by
  // role-based property binding; carries no state of its own.
  {
    CapabilitySpec cap;
    cap.name = "actuator";
    capabilities_.push_back(std::move(cap));
  }
}

const CapabilityRegistry& CapabilityRegistry::Instance() {
  static const CapabilityRegistry registry;
  return registry;
}

const CapabilitySpec* CapabilityRegistry::Find(const std::string& name) const {
  for (const CapabilitySpec& cap : capabilities_) {
    if (cap.name == name) return &cap;
  }
  return nullptr;
}

}  // namespace iotsan::devices
