#include "devices/device_type.hpp"

#include "util/error.hpp"

namespace iotsan::devices {

namespace {
const CapabilitySpec& Cap(const std::string& name) {
  const CapabilitySpec* cap = CapabilityRegistry::Instance().Find(name);
  if (cap == nullptr) {
    throw SemanticError("unknown capability '" + name + "'");
  }
  return *cap;
}
}  // namespace

bool DeviceTypeSpec::IsSensor() const {
  for (const std::string& name : capabilities) {
    if (Cap(name).sensor) return true;
  }
  return false;
}

bool DeviceTypeSpec::IsActuator() const {
  for (const std::string& name : capabilities) {
    if (!Cap(name).commands.empty()) return true;
  }
  return false;
}

bool DeviceTypeSpec::HasCapability(const std::string& capability) const {
  if (capability == "actuator") return IsActuator();
  if (capability == "sensor") return IsSensor();
  for (const std::string& name : capabilities) {
    if (name == capability) return true;
  }
  return false;
}

std::vector<const AttributeSpec*> DeviceTypeSpec::Attributes() const {
  std::vector<const AttributeSpec*> out;
  for (const std::string& name : capabilities) {
    for (const AttributeSpec& attr : Cap(name).attributes) {
      out.push_back(&attr);
    }
  }
  return out;
}

const AttributeSpec* DeviceTypeSpec::FindAttribute(
    const std::string& attr_name) const {
  for (const std::string& name : capabilities) {
    if (const AttributeSpec* attr = Cap(name).FindAttribute(attr_name)) {
      return attr;
    }
  }
  return nullptr;
}

const CommandSpec* DeviceTypeSpec::FindCommand(
    const std::string& command_name) const {
  for (const std::string& name : capabilities) {
    if (const CommandSpec* cmd = Cap(name).FindCommand(command_name)) {
      return cmd;
    }
  }
  return nullptr;
}

DeviceTypeRegistry::DeviceTypeRegistry() {
  auto add = [this](std::string name, std::string display,
                    std::vector<std::string> caps) {
    DeviceTypeSpec spec;
    spec.name = std::move(name);
    spec.display_name = std::move(display);
    spec.capabilities = std::move(caps);
    types_.push_back(std::move(spec));
  };

  // Sensors.
  add("motionSensor", "SmartSense Motion Sensor",
      {"motionSensor", "battery"});
  add("contactSensor", "SmartSense Open/Closed Sensor",
      {"contactSensor", "battery"});
  add("presenceSensor", "SmartSense Presence Sensor",
      {"presenceSensor", "battery"});
  add("temperatureSensor", "Temperature Sensor",
      {"temperatureMeasurement", "battery"});
  add("multiSensor", "SmartSense Multi",
      {"contactSensor", "temperatureMeasurement", "accelerationSensor",
       "threeAxis", "battery"});
  add("motionTempSensor", "Motion/Temperature Sensor",
      {"motionSensor", "temperatureMeasurement", "battery"});
  add("smokeDetector", "Smoke Detector",
      {"smokeDetector", "carbonMonoxideDetector", "battery"});
  add("coDetector", "Carbon Monoxide Detector",
      {"carbonMonoxideDetector", "battery"});
  add("waterLeakSensor", "Water Leak Sensor", {"waterSensor", "battery"});
  add("illuminanceSensor", "Illuminance Sensor",
      {"illuminanceMeasurement", "battery"});
  add("humiditySensor", "Humidity Sensor",
      {"relativeHumidityMeasurement", "battery"});
  add("soilMoistureSensor", "Soil Moisture Sensor",
      {"soilMoistureMeasurement", "battery"});
  add("buttonController", "Button Controller", {"button", "battery"});
  add("sleepSensor", "Sleep Sensor", {"sleepSensor", "battery"});
  add("weatherSensor", "Weather Station",
      {"temperatureMeasurement", "relativeHumidityMeasurement",
       "illuminanceMeasurement"});

  // Actuators.
  add("smartOutlet", "Smart Power Outlet",
      {"switch", "outlet", "powerMeter", "energyMeter"});
  add("smartSwitch", "In-Wall Smart Switch", {"switch"});
  add("relaySwitch", "Relay Switch", {"switch"});
  add("dimmerSwitch", "Dimmer Switch", {"switch", "switchLevel"});
  add("smartBulb", "Smart Bulb", {"switch", "switchLevel"});
  add("colorBulb", "Color Smart Bulb",
      {"switch", "switchLevel", "colorControl"});
  add("smartLock", "Z-Wave Smart Lock", {"lock", "battery"});
  add("doorController", "Door Controller", {"doorControl"});
  add("garageDoorOpener", "Garage Door Opener",
      {"doorControl", "contactSensor"});
  add("thermostatDevice", "Smart Thermostat",
      {"thermostat", "temperatureMeasurement"});
  add("smartAlarm", "Siren/Strobe Alarm", {"alarm"});
  add("waterValve", "Water Shut-off Valve", {"valve"});
  add("sprinklerController", "Sprinkler Controller", {"switch", "valve"});
  add("windowShadeController", "Window Shade", {"windowShade"});
  add("speaker", "Connected Speaker", {"musicPlayer"});
  add("camera", "Connected Camera", {"imageCapture"});
  add("voipCall", "VoIP Call Service", {"voiceCall"});
}

const DeviceTypeRegistry& DeviceTypeRegistry::Instance() {
  static const DeviceTypeRegistry registry;
  return registry;
}

const DeviceTypeSpec* DeviceTypeRegistry::Find(const std::string& name) const {
  for (const DeviceTypeSpec& type : types_) {
    if (type.name == name) return &type;
  }
  return nullptr;
}

}  // namespace iotsan::devices
