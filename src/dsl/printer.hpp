// AST pretty-printer: renders parsed SmartScript back to source-like text.
// Used by tests (round-trip checks) and by translation reports.
#pragma once

#include <string>

#include "dsl/ast.hpp"

namespace iotsan::dsl {

/// Renders an expression as SmartScript source.
std::string PrintExpr(const Expr& expr);

/// Renders a statement (with trailing newline) at the given indent level.
std::string PrintStmt(const Stmt& stmt, int indent = 0);

/// Renders an entire app: definition header, preferences, methods.
std::string PrintApp(const App& app);

}  // namespace iotsan::dsl
