#include "dsl/printer.hpp"

#include "util/strings.hpp"

namespace iotsan::dsl {

namespace {

const char* BinaryOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
    case BinaryOp::kIn: return "in";
  }
  return "?";
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

void PrintBody(const std::vector<StmtPtr>& body, int indent,
               std::string& out) {
  for (const StmtPtr& s : body) out += PrintStmt(*s, indent);
}

}  // namespace

std::string PrintExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kNullLit: return "null";
    case ExprKind::kBoolLit: return expr.bool_value ? "true" : "false";
    case ExprKind::kNumberLit: return strings::FormatNumber(expr.number_value);
    case ExprKind::kStringLit: return Quote(expr.text);
    case ExprKind::kListLit: {
      std::vector<std::string> parts;
      for (const ExprPtr& e : expr.items) parts.push_back(PrintExpr(*e));
      return "[" + strings::Join(parts, ", ") + "]";
    }
    case ExprKind::kMapLit: {
      if (expr.named.empty()) return "[:]";
      std::vector<std::string> parts;
      for (const NamedArg& a : expr.named) {
        parts.push_back(a.name + ": " + PrintExpr(*a.value));
      }
      return "[" + strings::Join(parts, ", ") + "]";
    }
    case ExprKind::kIdent: return expr.text;
    case ExprKind::kBinary:
      return "(" + PrintExpr(*expr.a) + " " + BinaryOpText(expr.binary_op) +
             " " + PrintExpr(*expr.b) + ")";
    case ExprKind::kUnary:
      return std::string(expr.unary_op == UnaryOp::kNeg ? "-" : "!") +
             PrintExpr(*expr.a);
    case ExprKind::kTernary:
      if (!expr.b) {
        return "(" + PrintExpr(*expr.a) + " ?: " + PrintExpr(*expr.c) + ")";
      }
      return "(" + PrintExpr(*expr.a) + " ? " + PrintExpr(*expr.b) + " : " +
             PrintExpr(*expr.c) + ")";
    case ExprKind::kCall: {
      std::string out;
      if (expr.a) {
        out = PrintExpr(*expr.a) + (expr.safe_navigation ? "?." : ".");
      }
      out += expr.text + "(";
      std::vector<std::string> parts;
      for (const ExprPtr& e : expr.items) parts.push_back(PrintExpr(*e));
      for (const NamedArg& a : expr.named) {
        parts.push_back(a.name + ": " + PrintExpr(*a.value));
      }
      out += strings::Join(parts, ", ") + ")";
      return out;
    }
    case ExprKind::kMember:
      return PrintExpr(*expr.a) + (expr.safe_navigation ? "?." : ".") +
             expr.text;
    case ExprKind::kIndex:
      return PrintExpr(*expr.a) + "[" + PrintExpr(*expr.b) + "]";
    case ExprKind::kClosure: {
      std::string out = "{ ";
      if (!expr.params.empty()) {
        std::vector<std::string> names(expr.params.begin(), expr.params.end());
        out += strings::Join(names, ", ") + " -> ";
      }
      for (const StmtPtr& s : expr.body) {
        std::string stmt = PrintStmt(*s, 0);
        while (!stmt.empty() && stmt.back() == '\n') stmt.pop_back();
        out += stmt + "; ";
      }
      out += "}";
      return out;
    }
    case ExprKind::kAssign: {
      const char* op = expr.assign_op == AssignOp::kAssign
                           ? " = "
                           : (expr.assign_op == AssignOp::kAddAssign
                                  ? " += "
                                  : " -= ");
      return PrintExpr(*expr.a) + op + PrintExpr(*expr.b);
    }
  }
  return "<?>";
}

std::string PrintStmt(const Stmt& stmt, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 4, ' ');
  std::string out;
  switch (stmt.kind) {
    case StmtKind::kExpr:
      out = pad + PrintExpr(*stmt.expr) + "\n";
      break;
    case StmtKind::kVarDecl:
      out = pad + "def " + stmt.name;
      if (stmt.expr) out += " = " + PrintExpr(*stmt.expr);
      out += "\n";
      break;
    case StmtKind::kIf:
      out = pad + "if (" + PrintExpr(*stmt.expr) + ") {\n";
      PrintBody(stmt.body, indent + 1, out);
      out += pad + "}";
      if (!stmt.else_body.empty()) {
        if (stmt.else_body.size() == 1 &&
            stmt.else_body[0]->kind == StmtKind::kIf) {
          std::string chained = PrintStmt(*stmt.else_body[0], indent);
          out += " else " + std::string(strings::Trim(chained)) + "\n";
          return out;
        }
        out += " else {\n";
        PrintBody(stmt.else_body, indent + 1, out);
        out += pad + "}";
      }
      out += "\n";
      break;
    case StmtKind::kReturn:
      out = pad + "return";
      if (stmt.expr) out += " " + PrintExpr(*stmt.expr);
      out += "\n";
      break;
    case StmtKind::kForIn:
      out = pad + "for (" + stmt.name + " in " + PrintExpr(*stmt.expr) +
            ") {\n";
      PrintBody(stmt.body, indent + 1, out);
      out += pad + "}\n";
      break;
    case StmtKind::kWhile:
      out = pad + "while (" + PrintExpr(*stmt.expr) + ") {\n";
      PrintBody(stmt.body, indent + 1, out);
      out += pad + "}\n";
      break;
    case StmtKind::kBlock:
      out = pad + "{\n";
      PrintBody(stmt.body, indent + 1, out);
      out += pad + "}\n";
      break;
  }
  return out;
}

std::string PrintApp(const App& app) {
  std::string out = "definition(name: " + Quote(app.name);
  if (!app.namespace_.empty()) out += ", namespace: " + Quote(app.namespace_);
  if (!app.author.empty()) out += ", author: " + Quote(app.author);
  if (!app.description.empty()) {
    out += ", description: " + Quote(app.description);
  }
  out += ")\n\n";

  if (!app.inputs.empty()) {
    out += "preferences {\n";
    std::string current_section;
    bool section_open = false;
    for (const InputDecl& input : app.inputs) {
      if (input.section != current_section || !section_open) {
        if (section_open) out += "    }\n";
        out += "    section(" + Quote(input.section) + ") {\n";
        current_section = input.section;
        section_open = true;
      }
      out += "        input " + Quote(input.name) + ", " + Quote(input.type);
      if (!input.title.empty()) out += ", title: " + Quote(input.title);
      if (!input.required) out += ", required: false";
      if (input.multiple) out += ", multiple: true";
      if (!input.options.empty()) {
        std::vector<std::string> opts;
        for (const std::string& o : input.options) opts.push_back(Quote(o));
        out += ", options: [" + strings::Join(opts, ", ") + "]";
      }
      out += "\n";
    }
    if (section_open) out += "    }\n";
    out += "}\n\n";
  }

  for (const MethodDecl& m : app.methods) {
    std::vector<std::string> params(m.params.begin(), m.params.end());
    out += "def " + m.name + "(" + strings::Join(params, ", ") + ") {\n";
    PrintBody(m.body, 1, out);
    out += "}\n\n";
  }
  return out;
}

}  // namespace iotsan::dsl
