#include "dsl/parser.hpp"

#include <utility>

#include "dsl/lexer.hpp"
#include "util/error.hpp"

namespace iotsan::dsl {

namespace {

class Parser {
 public:
  Parser(std::string_view source, std::string_view source_name)
      : tokens_(Tokenize(source, source_name)), source_name_(source_name) {}

  App ParseApp() {
    App app;
    app.source_name = std::string(source_name_);
    bool saw_definition = false;
    while (!Check(TokenKind::kEnd)) {
      if (CheckIdent("definition")) {
        ParseDefinition(app);
        saw_definition = true;
      } else if (CheckIdent("preferences")) {
        ParsePreferences(app);
      } else if (Check(TokenKind::kDef)) {
        app.methods.push_back(ParseMethod());
      } else {
        Fail("expected 'definition', 'preferences', or a method");
      }
    }
    if (!saw_definition) {
      throw SemanticError(std::string(source_name_) +
                          ": app has no definition(...) block");
    }
    return app;
  }

  ExprPtr ParseSingleExpression() {
    ExprPtr e = ParseExpr();
    if (!Check(TokenKind::kEnd)) Fail("trailing content after expression");
    return e;
  }

 private:
  std::vector<Token> tokens_;
  std::size_t index_ = 0;
  std::string_view source_name_;

  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = index_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Current() const { return Peek(); }

  Token Advance() {
    Token t = Peek();
    if (index_ + 1 < tokens_.size()) ++index_;
    return t;
  }

  bool Check(TokenKind kind) const { return Current().kind == kind; }
  bool CheckIdent(std::string_view name) const {
    return Current().kind == TokenKind::kIdentifier && Current().text == name;
  }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Token Expect(TokenKind kind, const char* context) {
    if (!Check(kind)) {
      Fail(std::string("expected ") + std::string(TokenKindName(kind)) +
           " in " + context + ", got " +
           std::string(TokenKindName(Current().kind)));
    }
    return Advance();
  }

  [[noreturn]] void Fail(const std::string& message) const {
    const Token& t = Current();
    throw ParseError(std::string(source_name_) + ":" + std::to_string(t.line) +
                     ":" + std::to_string(t.column) + ": " + message);
  }

  ExprPtr NewExpr(ExprKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = Current().line;
    e->column = Current().column;
    return e;
  }

  StmtPtr NewStmt(StmtKind kind) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = Current().line;
    s->column = Current().column;
    return s;
  }

  // ---- Top-level forms -------------------------------------------------

  void ParseDefinition(App& app) {
    Advance();  // 'definition'
    Expect(TokenKind::kLeftParen, "definition");
    while (!Check(TokenKind::kRightParen)) {
      Token key = Expect(TokenKind::kIdentifier, "definition");
      Expect(TokenKind::kColon, "definition");
      // Values are strings (or arbitrary expressions we ignore).
      if (Check(TokenKind::kString)) {
        const std::string value = Advance().text;
        if (key.text == "name") app.name = value;
        else if (key.text == "namespace") app.namespace_ = value;
        else if (key.text == "author") app.author = value;
        else if (key.text == "description") app.description = value;
        else if (key.text == "category") app.category = value;
        // Unknown string keys (iconUrl, ...) are accepted and dropped.
      } else {
        ParseExpr();  // non-string metadata value: parse and drop
      }
      if (!Match(TokenKind::kComma)) break;
    }
    Expect(TokenKind::kRightParen, "definition");
    if (app.name.empty()) {
      throw SemanticError(std::string(source_name_) +
                          ": definition(...) must provide name:");
    }
  }

  void ParsePreferences(App& app) {
    Advance();  // 'preferences'
    Expect(TokenKind::kLeftBrace, "preferences");
    while (!Check(TokenKind::kRightBrace)) {
      if (CheckIdent("section")) {
        ParseSection(app);
      } else if (CheckIdent("input")) {
        ParseInput(app, /*section=*/"");
      } else if (CheckIdent("page")) {
        ParsePage(app);
      } else {
        Fail("expected 'section', 'page', or 'input' in preferences");
      }
    }
    Expect(TokenKind::kRightBrace, "preferences");
  }

  // `page(name: "p", title: "t") { section... }` — flattened.
  void ParsePage(App& app) {
    Advance();  // 'page'
    if (Match(TokenKind::kLeftParen)) {
      SkipBalancedParens();
    }
    Expect(TokenKind::kLeftBrace, "page");
    while (!Check(TokenKind::kRightBrace)) {
      if (CheckIdent("section")) {
        ParseSection(app);
      } else if (CheckIdent("input")) {
        ParseInput(app, "");
      } else {
        Fail("expected 'section' or 'input' in page");
      }
    }
    Expect(TokenKind::kRightBrace, "page");
  }

  void SkipBalancedParens() {
    int depth = 1;
    while (depth > 0 && !Check(TokenKind::kEnd)) {
      if (Check(TokenKind::kLeftParen)) ++depth;
      if (Check(TokenKind::kRightParen)) --depth;
      Advance();
    }
  }

  void ParseSection(App& app) {
    Advance();  // 'section'
    std::string description;
    if (Match(TokenKind::kLeftParen)) {
      if (Check(TokenKind::kString)) description = Advance().text;
      // Named section options (hideable:, ...) — skip.
      while (Match(TokenKind::kComma)) {
        Expect(TokenKind::kIdentifier, "section options");
        Expect(TokenKind::kColon, "section options");
        ParseExpr();
      }
      Expect(TokenKind::kRightParen, "section");
    }
    Expect(TokenKind::kLeftBrace, "section");
    while (!Check(TokenKind::kRightBrace)) {
      if (CheckIdent("input")) {
        ParseInput(app, description);
      } else if (CheckIdent("paragraph") || CheckIdent("label") ||
                 CheckIdent("mode") || CheckIdent("href")) {
        // Cosmetic elements: consume the directive and its arguments.
        Advance();
        ParseCommandArgsAndDrop();
      } else {
        Fail("expected 'input' (or paragraph/label/mode/href) in section");
      }
    }
    Expect(TokenKind::kRightBrace, "section");
  }

  void ParseCommandArgsAndDrop() {
    if (Match(TokenKind::kLeftParen)) {
      int depth = 1;
      while (depth > 0 && !Check(TokenKind::kEnd)) {
        if (Check(TokenKind::kLeftParen)) ++depth;
        if (Check(TokenKind::kRightParen)) --depth;
        Advance();
      }
      return;
    }
    // Paren-free argument list: consume expressions until end of line.
    if (Current().starts_line || Check(TokenKind::kRightBrace)) return;
    do {
      if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kColon) {
        Advance();
        Advance();
      }
      ParseExpr();
    } while (Match(TokenKind::kComma));
  }

  void ParseInput(App& app, std::string section) {
    const int line = Current().line;
    Advance();  // 'input'
    const bool parenthesized = Match(TokenKind::kLeftParen);
    InputDecl input;
    input.section = std::move(section);
    input.line = line;
    input.name = Expect(TokenKind::kString, "input name").text;
    Expect(TokenKind::kComma, "input");
    input.type = Expect(TokenKind::kString, "input type").text;
    while (Match(TokenKind::kComma)) {
      Token key = Expect(TokenKind::kIdentifier, "input options");
      Expect(TokenKind::kColon, "input options");
      if (key.text == "title" || key.text == "description") {
        const std::string v = Expect(TokenKind::kString, "input title").text;
        if (key.text == "title") input.title = v;
      } else if (key.text == "required") {
        ExprPtr v = ParseExpr();
        input.required = !(v->kind == ExprKind::kBoolLit && !v->bool_value);
      } else if (key.text == "multiple") {
        ExprPtr v = ParseExpr();
        input.multiple = v->kind == ExprKind::kBoolLit && v->bool_value;
      } else if (key.text == "options") {
        ExprPtr v = ParseExpr();
        if (v->kind != ExprKind::kListLit) Fail("options: expects a list");
        for (const ExprPtr& item : v->items) {
          if (item->kind != ExprKind::kStringLit) {
            Fail("options: expects a list of strings");
          }
          input.options.push_back(item->text);
        }
      } else if (key.text == "defaultValue") {
        input.default_value = ParseExpr();
      } else {
        ParseExpr();  // metadata we do not model (image:, ...)
      }
    }
    if (parenthesized) Expect(TokenKind::kRightParen, "input");
    app.inputs.push_back(std::move(input));
  }

  MethodDecl ParseMethod() {
    MethodDecl method;
    method.line = Current().line;
    Expect(TokenKind::kDef, "method");
    method.name = Expect(TokenKind::kIdentifier, "method name").text;
    Expect(TokenKind::kLeftParen, "method parameters");
    while (!Check(TokenKind::kRightParen)) {
      method.params.push_back(
          Expect(TokenKind::kIdentifier, "parameter").text);
      if (!Match(TokenKind::kComma)) break;
    }
    Expect(TokenKind::kRightParen, "method parameters");
    method.body = ParseBlock();
    return method;
  }

  // ---- Statements ------------------------------------------------------

  std::vector<StmtPtr> ParseBlock() {
    Expect(TokenKind::kLeftBrace, "block");
    std::vector<StmtPtr> stmts;
    while (!Check(TokenKind::kRightBrace) && !Check(TokenKind::kEnd)) {
      stmts.push_back(ParseStatement());
    }
    Expect(TokenKind::kRightBrace, "block");
    return stmts;
  }

  std::vector<StmtPtr> ParseBlockOrSingle() {
    if (Check(TokenKind::kLeftBrace)) return ParseBlock();
    std::vector<StmtPtr> stmts;
    stmts.push_back(ParseStatement());
    return stmts;
  }

  StmtPtr ParseStatement() {
    while (Match(TokenKind::kSemicolon)) {
    }
    if (Check(TokenKind::kDef)) return ParseVarDecl();
    if (Check(TokenKind::kIf)) return ParseIf();
    if (Check(TokenKind::kReturn)) return ParseReturn();
    if (Check(TokenKind::kFor)) return ParseForIn();
    if (Check(TokenKind::kWhile)) return ParseWhile();
    return ParseExprStatement();
  }

  StmtPtr ParseVarDecl() {
    StmtPtr s = NewStmt(StmtKind::kVarDecl);
    Advance();  // 'def'
    s->name = Expect(TokenKind::kIdentifier, "variable declaration").text;
    if (Match(TokenKind::kAssign)) {
      s->expr = ParseExpr();
    }
    Match(TokenKind::kSemicolon);
    return s;
  }

  StmtPtr ParseIf() {
    StmtPtr s = NewStmt(StmtKind::kIf);
    Advance();  // 'if'
    Expect(TokenKind::kLeftParen, "if condition");
    s->expr = ParseExpr();
    Expect(TokenKind::kRightParen, "if condition");
    s->body = ParseBlockOrSingle();
    if (Match(TokenKind::kElse)) {
      if (Check(TokenKind::kIf)) {
        s->else_body.push_back(ParseIf());
      } else {
        s->else_body = ParseBlockOrSingle();
      }
    }
    return s;
  }

  StmtPtr ParseReturn() {
    StmtPtr s = NewStmt(StmtKind::kReturn);
    Advance();  // 'return'
    if (!Check(TokenKind::kRightBrace) && !Check(TokenKind::kSemicolon) &&
        !Check(TokenKind::kEnd) && !Current().starts_line) {
      s->expr = ParseExpr();
    }
    Match(TokenKind::kSemicolon);
    return s;
  }

  StmtPtr ParseForIn() {
    StmtPtr s = NewStmt(StmtKind::kForIn);
    Advance();  // 'for'
    Expect(TokenKind::kLeftParen, "for");
    if (Check(TokenKind::kDef)) Advance();  // `for (def x in e)` tolerated
    s->name = Expect(TokenKind::kIdentifier, "for variable").text;
    Expect(TokenKind::kIn, "for");
    s->expr = ParseExpr();
    Expect(TokenKind::kRightParen, "for");
    s->body = ParseBlockOrSingle();
    return s;
  }

  StmtPtr ParseWhile() {
    StmtPtr s = NewStmt(StmtKind::kWhile);
    Advance();  // 'while'
    Expect(TokenKind::kLeftParen, "while condition");
    s->expr = ParseExpr();
    Expect(TokenKind::kRightParen, "while condition");
    s->body = ParseBlockOrSingle();
    return s;
  }

  /// True if the current token could begin a Groovy command-call argument.
  bool StartsCommandArg() const {
    switch (Current().kind) {
      case TokenKind::kString:
      case TokenKind::kNumber:
      case TokenKind::kIdentifier:
      case TokenKind::kTrue:
      case TokenKind::kFalse:
      case TokenKind::kNull:
      case TokenKind::kLeftBracket:
        return true;
      default:
        return false;
    }
  }

  StmtPtr ParseExprStatement() {
    StmtPtr s = NewStmt(StmtKind::kExpr);
    ExprPtr e = ParsePrecedence(0);

    // Groovy command-call: `subscribe motion1, "motion.active", handler`.
    // Recognized when a bare identifier (or member access) is followed on
    // the same line by a token that can begin an argument.
    const bool callable_head =
        e->kind == ExprKind::kIdent || e->kind == ExprKind::kMember;
    if (callable_head && StartsCommandArg() && !Current().starts_line) {
      ExprPtr call = std::make_unique<Expr>();
      call->kind = ExprKind::kCall;
      call->line = e->line;
      call->column = e->column;
      if (e->kind == ExprKind::kIdent) {
        call->text = e->text;
      } else {
        call->text = e->text;          // member name
        call->a = std::move(e->a);     // receiver
      }
      ParseCallArgsInto(*call, /*terminated_by_paren=*/false);
      e = std::move(call);
    }
    s->expr = std::move(e);
    Match(TokenKind::kSemicolon);
    return s;
  }

  // ---- Expressions (precedence climbing) --------------------------------
  //
  // Levels (loosest to tightest):
  //   0 assignment   = += -=
  //   1 ternary ?: / elvis
  //   2 ||
  //   3 &&
  //   4 == !=
  //   5 < <= > >= in
  //   6 + -
  //   7 * / %
  //   8 unary - !
  //   9 postfix: call, member, index
  //  10 primary

  ExprPtr ParseExpr() { return ParsePrecedence(0); }

  ExprPtr ParsePrecedence(int level) {
    switch (level) {
      case 0: return ParseAssignment();
      case 1: return ParseTernary();
      default: return ParseBinaryLevel(level);
    }
  }

  ExprPtr ParseAssignment() {
    ExprPtr target = ParsePrecedence(1);
    AssignOp op;
    if (Check(TokenKind::kAssign)) op = AssignOp::kAssign;
    else if (Check(TokenKind::kPlusAssign)) op = AssignOp::kAddAssign;
    else if (Check(TokenKind::kMinusAssign)) op = AssignOp::kSubAssign;
    else return target;

    if (target->kind != ExprKind::kIdent &&
        target->kind != ExprKind::kMember &&
        target->kind != ExprKind::kIndex) {
      Fail("invalid assignment target");
    }
    Advance();
    ExprPtr e = NewExpr(ExprKind::kAssign);
    e->assign_op = op;
    e->line = target->line;
    e->column = target->column;
    e->a = std::move(target);
    e->b = ParseAssignment();  // right-associative
    return e;
  }

  ExprPtr ParseTernary() {
    ExprPtr cond = ParseBinaryLevel(2);
    if (Match(TokenKind::kQuestion)) {
      ExprPtr e = NewExpr(ExprKind::kTernary);
      e->line = cond->line;
      e->a = std::move(cond);
      e->b = ParseTernary();
      Expect(TokenKind::kColon, "ternary");
      e->c = ParseTernary();
      return e;
    }
    if (Match(TokenKind::kElvis)) {
      // a ?: b  ==  a ? a : b; represented as ternary with null then-branch
      // and the evaluator treating a missing `b` as "reuse condition".
      ExprPtr e = NewExpr(ExprKind::kTernary);
      e->line = cond->line;
      e->a = std::move(cond);
      e->b = nullptr;  // elvis marker
      e->c = ParseTernary();
      return e;
    }
    return cond;
  }

  static bool BinaryOpAt(int level, TokenKind kind, BinaryOp& op) {
    switch (level) {
      case 2:
        if (kind == TokenKind::kOrOr) { op = BinaryOp::kOr; return true; }
        return false;
      case 3:
        if (kind == TokenKind::kAndAnd) { op = BinaryOp::kAnd; return true; }
        return false;
      case 4:
        if (kind == TokenKind::kEq) { op = BinaryOp::kEq; return true; }
        if (kind == TokenKind::kNe) { op = BinaryOp::kNe; return true; }
        return false;
      case 5:
        if (kind == TokenKind::kLt) { op = BinaryOp::kLt; return true; }
        if (kind == TokenKind::kLe) { op = BinaryOp::kLe; return true; }
        if (kind == TokenKind::kGt) { op = BinaryOp::kGt; return true; }
        if (kind == TokenKind::kGe) { op = BinaryOp::kGe; return true; }
        if (kind == TokenKind::kIn) { op = BinaryOp::kIn; return true; }
        return false;
      case 6:
        if (kind == TokenKind::kPlus) { op = BinaryOp::kAdd; return true; }
        if (kind == TokenKind::kMinus) { op = BinaryOp::kSub; return true; }
        return false;
      case 7:
        if (kind == TokenKind::kStar) { op = BinaryOp::kMul; return true; }
        if (kind == TokenKind::kSlash) { op = BinaryOp::kDiv; return true; }
        if (kind == TokenKind::kPercent) { op = BinaryOp::kMod; return true; }
        return false;
      default:
        return false;
    }
  }

  ExprPtr ParseBinaryLevel(int level) {
    if (level >= 8) return ParseUnary();
    ExprPtr lhs = ParseBinaryLevel(level + 1);
    BinaryOp op;
    while (BinaryOpAt(level, Current().kind, op)) {
      // Groovy statements are newline-terminated, but only operators that
      // could also *start* a statement are ambiguous at a line break:
      // '+'/'-' (unary prefixes).  '&&', '==', '<', ... cannot begin a
      // statement, so they continue the previous line's expression.
      if (Current().starts_line && (Current().kind == TokenKind::kPlus ||
                                    Current().kind == TokenKind::kMinus)) {
        break;
      }
      Advance();
      ExprPtr e = NewExpr(ExprKind::kBinary);
      e->binary_op = op;
      e->line = lhs->line;
      e->a = std::move(lhs);
      e->b = ParseBinaryLevel(level + 1);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (Check(TokenKind::kMinus) || Check(TokenKind::kNot)) {
      ExprPtr e = NewExpr(ExprKind::kUnary);
      e->unary_op =
          Check(TokenKind::kMinus) ? UnaryOp::kNeg : UnaryOp::kNot;
      Advance();
      e->a = ParseUnary();
      return e;
    }
    return ParsePostfix();
  }

  void ParseCallArgsInto(Expr& call, bool terminated_by_paren) {
    while (true) {
      if (terminated_by_paren && Check(TokenKind::kRightParen)) break;
      if (Check(TokenKind::kIdentifier) &&
          Peek(1).kind == TokenKind::kColon) {
        NamedArg arg;
        arg.name = Advance().text;
        Advance();  // ':'
        arg.value = ParsePrecedence(1);
        call.named.push_back(std::move(arg));
      } else {
        call.items.push_back(ParsePrecedence(1));
      }
      if (!Match(TokenKind::kComma)) break;
    }
    if (terminated_by_paren) {
      Expect(TokenKind::kRightParen, "call arguments");
    }
  }

  ExprPtr ParseClosure() {
    ExprPtr e = NewExpr(ExprKind::kClosure);
    Expect(TokenKind::kLeftBrace, "closure");
    // Detect an explicit parameter list: IDENT (',' IDENT)* '->'.
    std::size_t save = index_;
    std::vector<std::string> params;
    bool has_params = false;
    if (Check(TokenKind::kIdentifier)) {
      params.push_back(Current().text);
      std::size_t probe = index_ + 1;
      while (probe + 1 < tokens_.size() &&
             tokens_[probe].kind == TokenKind::kComma &&
             tokens_[probe + 1].kind == TokenKind::kIdentifier) {
        params.push_back(tokens_[probe + 1].text);
        probe += 2;
      }
      if (probe < tokens_.size() &&
          tokens_[probe].kind == TokenKind::kArrow) {
        has_params = true;
        index_ = probe + 1;
      }
    }
    if (has_params) {
      e->params = std::move(params);
    } else {
      index_ = save;
    }
    while (!Check(TokenKind::kRightBrace) && !Check(TokenKind::kEnd)) {
      e->body.push_back(ParseStatement());
    }
    Expect(TokenKind::kRightBrace, "closure");
    return e;
  }

  ExprPtr ParsePostfix() {
    ExprPtr e = ParsePrimary();
    while (true) {
      if (Check(TokenKind::kDot) || Check(TokenKind::kSafeDot)) {
        const bool safe = Check(TokenKind::kSafeDot);
        Advance();
        Token name = Expect(TokenKind::kIdentifier, "member access");
        if (Check(TokenKind::kLeftParen) || Check(TokenKind::kLeftBrace)) {
          ExprPtr call = std::make_unique<Expr>();
          call->kind = ExprKind::kCall;
          call->line = name.line;
          call->column = name.column;
          call->text = name.text;
          call->safe_navigation = safe;
          call->a = std::move(e);
          if (Match(TokenKind::kLeftParen)) {
            ParseCallArgsInto(*call, /*terminated_by_paren=*/true);
          }
          if (Check(TokenKind::kLeftBrace)) {
            call->items.push_back(ParseClosure());  // trailing closure
          }
          e = std::move(call);
        } else {
          ExprPtr member = std::make_unique<Expr>();
          member->kind = ExprKind::kMember;
          member->line = name.line;
          member->column = name.column;
          member->text = name.text;
          member->safe_navigation = safe;
          member->a = std::move(e);
          e = std::move(member);
        }
      } else if (Check(TokenKind::kLeftParen) &&
                 e->kind == ExprKind::kIdent) {
        // Free-function call: f(args).
        Advance();
        ExprPtr call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->line = e->line;
        call->column = e->column;
        call->text = e->text;
        ParseCallArgsInto(*call, /*terminated_by_paren=*/true);
        if (Check(TokenKind::kLeftBrace)) {
          call->items.push_back(ParseClosure());
        }
        e = std::move(call);
      } else if (Check(TokenKind::kLeftBracket) && !Current().starts_line) {
        Advance();
        ExprPtr index = std::make_unique<Expr>();
        index->kind = ExprKind::kIndex;
        index->line = e->line;
        index->column = e->column;
        index->a = std::move(e);
        index->b = ParseExpr();
        Expect(TokenKind::kRightBracket, "index");
        e = std::move(index);
      } else {
        break;
      }
    }
    return e;
  }

  ExprPtr ParsePrimary() {
    switch (Current().kind) {
      case TokenKind::kNull: {
        ExprPtr e = NewExpr(ExprKind::kNullLit);
        Advance();
        return e;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        ExprPtr e = NewExpr(ExprKind::kBoolLit);
        e->bool_value = Check(TokenKind::kTrue);
        Advance();
        return e;
      }
      case TokenKind::kNumber: {
        ExprPtr e = NewExpr(ExprKind::kNumberLit);
        e->number_value = Current().number;
        e->is_decimal = Current().is_decimal;
        Advance();
        return e;
      }
      case TokenKind::kString: {
        ExprPtr e = NewExpr(ExprKind::kStringLit);
        e->text = Current().text;
        Advance();
        return e;
      }
      case TokenKind::kIdentifier: {
        ExprPtr e = NewExpr(ExprKind::kIdent);
        e->text = Current().text;
        Advance();
        return e;
      }
      case TokenKind::kLeftParen: {
        Advance();
        ExprPtr e = ParseExpr();
        Expect(TokenKind::kRightParen, "parenthesized expression");
        return e;
      }
      case TokenKind::kLeftBracket:
        return ParseListOrMap();
      case TokenKind::kLeftBrace:
        return ParseClosure();
      default:
        Fail("expected an expression, got " +
             std::string(TokenKindName(Current().kind)));
    }
  }

  ExprPtr ParseListOrMap() {
    const int line = Current().line;
    Expect(TokenKind::kLeftBracket, "list/map literal");
    // Disambiguation: `[:]` empty map; `key: v` map; otherwise list.
    if (Match(TokenKind::kColon)) {
      Expect(TokenKind::kRightBracket, "map literal");
      ExprPtr e = NewExpr(ExprKind::kMapLit);
      e->line = line;
      return e;
    }
    const bool is_map =
        (Check(TokenKind::kIdentifier) || Check(TokenKind::kString)) &&
        Peek(1).kind == TokenKind::kColon;
    if (is_map) {
      ExprPtr e = NewExpr(ExprKind::kMapLit);
      e->line = line;
      while (!Check(TokenKind::kRightBracket)) {
        NamedArg entry;
        if (Check(TokenKind::kIdentifier) || Check(TokenKind::kString)) {
          entry.name = Advance().text;
        } else {
          Fail("expected map key");
        }
        Expect(TokenKind::kColon, "map literal");
        entry.value = ParsePrecedence(1);
        e->named.push_back(std::move(entry));
        if (!Match(TokenKind::kComma)) break;
      }
      Expect(TokenKind::kRightBracket, "map literal");
      return e;
    }
    ExprPtr e = NewExpr(ExprKind::kListLit);
    e->line = line;
    while (!Check(TokenKind::kRightBracket)) {
      e->items.push_back(ParsePrecedence(1));
      if (!Match(TokenKind::kComma)) break;
    }
    Expect(TokenKind::kRightBracket, "list literal");
    return e;
  }
};

}  // namespace

App ParseApp(std::string_view source, std::string_view source_name) {
  return Parser(source, source_name).ParseApp();
}

ExprPtr ParseExpression(std::string_view source,
                        std::string_view source_name) {
  return Parser(source, source_name).ParseSingleExpression();
}

}  // namespace iotsan::dsl
