#include "dsl/type_infer.hpp"

#include <cctype>
#include <set>

#include "util/strings.hpp"

namespace iotsan::dsl {

Type TypeInfo::LocalType(const std::string& method,
                         const std::string& var) const {
  auto it = locals.find(method + "." + var);
  if (it != locals.end()) return it->second;
  auto pit = params.find(method + "." + var);
  if (pit != params.end()) return pit->second;
  return Type::Dynamic();
}

Type TypeInfo::ReturnType(const std::string& method) const {
  auto it = returns.find(method);
  return it != returns.end() ? it->second : Type::Dynamic();
}

Type InputDeclType(const InputDecl& input) {
  Type base;
  if (strings::StartsWith(input.type, "capability.")) {
    base = Type::Device(input.type.substr(std::string("capability.").size()));
  } else if (input.type == "number") {
    base = Type::Integer();
  } else if (input.type == "decimal") {
    base = Type::Decimal();
  } else if (input.type == "bool" || input.type == "boolean") {
    base = Type::Boolean();
  } else if (input.type == "enum" || input.type == "text" ||
             input.type == "string" || input.type == "time" ||
             input.type == "phone" || input.type == "contact" ||
             input.type == "mode" || input.type == "hub" ||
             input.type == "password" || input.type == "email") {
    base = Type::String();
  } else if (input.type == "device.*" || input.type == "device") {
    base = Type::Device("actuator");
  } else {
    base = Type::Dynamic();
  }
  return input.multiple ? Type::ListOf(base) : base;
}

namespace {

/// Attributes whose `current<Attr>` reading is numeric.
const std::set<std::string>& NumericAttributes() {
  static const std::set<std::string> kNumeric = {
      "temperature", "humidity",     "illuminance", "battery",
      "level",       "power",        "energy",      "soilMoisture",
      "carbonDioxide", "heatingSetpoint", "coolingSetpoint",
      "thermostatSetpoint",
  };
  return kNumeric;
}

/// Platform free functions and their return types (SmartThings API).
bool PlatformFunctionType(const std::string& name, Type& out) {
  static const std::map<std::string, Type>& kApi = *new std::map<std::string, Type>{
      {"subscribe", Type::Void()},
      {"unsubscribe", Type::Void()},
      {"schedule", Type::Void()},
      {"unschedule", Type::Void()},
      {"runIn", Type::Void()},
      {"runEvery5Minutes", Type::Void()},
      {"runEvery10Minutes", Type::Void()},
      {"runEvery15Minutes", Type::Void()},
      {"runEvery30Minutes", Type::Void()},
      {"runEvery1Hour", Type::Void()},
      {"runEvery3Hours", Type::Void()},
      {"runOnce", Type::Void()},
      {"sendSms", Type::Void()},
      {"sendSmsMessage", Type::Void()},
      {"sendPush", Type::Void()},
      {"sendPushMessage", Type::Void()},
      {"sendNotification", Type::Void()},
      {"sendNotificationEvent", Type::Void()},
      {"sendNotificationToContacts", Type::Void()},
      {"httpPost", Type::Void()},
      {"httpGet", Type::Void()},
      {"httpPostJson", Type::Void()},
      {"setLocationMode", Type::Void()},
      {"sendLocationEvent", Type::Void()},
      {"sendEvent", Type::Void()},
      {"createFakeEvent", Type::Void()},
      {"now", Type::Integer()},
      {"timeOfDayIsBetween", Type::Boolean()},
      {"timeToday", Type::Integer()},
      {"getSunriseAndSunset", Type::Map()},
      {"parseJson", Type::Map()},
      {"pause", Type::Void()},
      {"log", Type::Void()},
  };
  auto it = kApi.find(name);
  if (it == kApi.end()) return false;
  out = it->second;
  return true;
}

class Inference {
 public:
  explicit Inference(const App& app) : app_(app) {}

  TypeInfo Run() {
    SeedGlobals();
    SeedHandlerParams();
    // Iterate to a fixed point; bound the pass count defensively (the
    // lattice has height 2 per variable, so convergence is fast).
    for (int pass = 0; pass < 16; ++pass) {
      changed_ = false;
      for (const MethodDecl& method : app_.methods) {
        AnalyzeMethod(method);
      }
      ++info_.iterations;
      if (!changed_) break;
    }
    // Problems are reported once, after convergence, so messages reflect
    // final types.
    report_problems_ = true;
    for (const MethodDecl& method : app_.methods) AnalyzeMethod(method);
    return std::move(info_);
  }

 private:
  const App& app_;
  TypeInfo info_;
  bool changed_ = false;
  bool report_problems_ = false;
  const MethodDecl* current_method_ = nullptr;
  std::vector<std::map<std::string, Type>> scopes_;

  void Problem(int line, const std::string& message) {
    if (!report_problems_) return;
    std::string where = app_.source_name + ":" + std::to_string(line);
    std::string text = where + ": " + message;
    for (const std::string& existing : info_.problems) {
      if (existing == text) return;
    }
    info_.problems.push_back(std::move(text));
  }

  void SeedGlobals() {
    for (const InputDecl& input : app_.inputs) {
      info_.globals[input.name] = InputDeclType(input);
    }
    info_.globals["state"] = Type::Map();
  }

  /// Handler methods (referenced by subscribe/schedule/runIn) receive one
  /// event argument, modeled as Map.
  void SeedHandlerParams() {
    for (const MethodDecl& method : app_.methods) {
      for (const StmtPtr& stmt : method.body) {
        SeedHandlersIn(*stmt);
      }
    }
    // Lifecycle methods take no arguments; any other single-parameter
    // method defaults its parameter to the event type too (a handler may
    // be referenced only via a string name).
    for (const MethodDecl& method : app_.methods) {
      if (method.params.size() == 1) {
        JoinInto(info_.params, method.name + "." + method.params[0],
                 Type::Map());
      }
    }
  }

  void SeedHandlersIn(const Stmt& stmt) {
    if (stmt.expr) SeedHandlersInExpr(*stmt.expr);
    for (const StmtPtr& s : stmt.body) SeedHandlersIn(*s);
    for (const StmtPtr& s : stmt.else_body) SeedHandlersIn(*s);
  }

  void SeedHandlersInExpr(const Expr& expr) {
    if (expr.kind == ExprKind::kCall &&
        (expr.text == "subscribe" || expr.text == "runIn" ||
         expr.text == "schedule" || expr.text == "runOnce")) {
      for (const ExprPtr& arg : expr.items) {
        if (arg->kind == ExprKind::kIdent) {
          if (const MethodDecl* m = app_.FindMethod(arg->text);
              m && m->params.size() == 1) {
            JoinInto(info_.params, m->name + "." + m->params[0], Type::Map());
          }
        }
      }
    }
    if (expr.a) SeedHandlersInExpr(*expr.a);
    if (expr.b) SeedHandlersInExpr(*expr.b);
    if (expr.c) SeedHandlersInExpr(*expr.c);
    for (const ExprPtr& item : expr.items) SeedHandlersInExpr(*item);
    for (const NamedArg& arg : expr.named) SeedHandlersInExpr(*arg.value);
  }

  void JoinInto(std::map<std::string, Type>& table, const std::string& key,
                const Type& type) {
    auto [it, inserted] = table.emplace(key, type);
    if (inserted) {
      if (!type.is_dynamic()) changed_ = true;
      return;
    }
    Type joined = Type::Join(it->second, type);
    if (joined != it->second) {
      it->second = joined;
      changed_ = true;
    }
  }

  // ---- Environment -----------------------------------------------------

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  void DeclareLocal(const std::string& name, const Type& type) {
    scopes_.back()[name] = type;
    JoinInto(info_.locals, current_method_->name + "." + name, type);
  }

  bool LookupLocal(const std::string& name, Type& out) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        out = found->second;
        return true;
      }
    }
    return false;
  }

  void UpdateVariable(const std::string& name, const Type& type) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        found->second = Type::Join(found->second, type);
        JoinInto(info_.locals, current_method_->name + "." + name,
                 found->second);
        return;
      }
    }
    // Assignment to an undeclared name: Groovy treats it as a binding
    // variable; record it as an app global.
    JoinInto(info_.globals, name, type);
  }

  Type VariableType(const std::string& name) {
    Type t;
    if (LookupLocal(name, t)) return t;
    if (current_method_) {
      auto pit = info_.params.find(current_method_->name + "." + name);
      if (pit != info_.params.end()) return pit->second;
    }
    auto git = info_.globals.find(name);
    if (git != info_.globals.end()) return git->second;
    return Type::Dynamic();
  }

  // ---- Methods and statements -------------------------------------------

  void AnalyzeMethod(const MethodDecl& method) {
    current_method_ = &method;
    scopes_.clear();
    PushScope();
    Type return_type = Type::Void();
    AnalyzeBody(method.body, return_type);
    JoinInto(info_.returns, method.name, return_type);
    PopScope();
    current_method_ = nullptr;
  }

  void AnalyzeBody(const std::vector<StmtPtr>& body, Type& return_type) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      const Stmt& stmt = *body[i];
      const bool is_last = i + 1 == body.size();
      AnalyzeStmt(stmt, return_type, is_last);
    }
  }

  void AnalyzeStmt(const Stmt& stmt, Type& return_type, bool is_last) {
    switch (stmt.kind) {
      case StmtKind::kVarDecl: {
        Type t = stmt.expr ? TypeOf(*stmt.expr) : Type::Dynamic();
        DeclareLocal(stmt.name, t);
        break;
      }
      case StmtKind::kExpr: {
        Type t = TypeOf(*stmt.expr);
        // Groovy implicit return: the value of the trailing expression is
        // the method's return value (paper Fig. 6: `switches + onSwitches`).
        if (is_last && t.kind() != TypeKind::kVoid) {
          return_type = Type::Join(return_type, t);
        }
        break;
      }
      case StmtKind::kReturn:
        if (stmt.expr) {
          return_type = Type::Join(return_type, TypeOf(*stmt.expr));
        }
        break;
      case StmtKind::kIf: {
        TypeOf(*stmt.expr);
        PushScope();
        AnalyzeBody(stmt.body, return_type);
        PopScope();
        PushScope();
        AnalyzeBody(stmt.else_body, return_type);
        PopScope();
        break;
      }
      case StmtKind::kForIn: {
        Type iterable = TypeOf(*stmt.expr);
        PushScope();
        DeclareLocal(stmt.name, iterable.is_list() ? iterable.element()
                                                   : Type::Dynamic());
        AnalyzeBody(stmt.body, return_type);
        PopScope();
        break;
      }
      case StmtKind::kWhile: {
        TypeOf(*stmt.expr);
        PushScope();
        AnalyzeBody(stmt.body, return_type);
        PopScope();
        break;
      }
      case StmtKind::kBlock: {
        PushScope();
        AnalyzeBody(stmt.body, return_type);
        PopScope();
        break;
      }
    }
  }

  // ---- Expressions -------------------------------------------------------

  Type TypeOf(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kNullLit:
        return Type::Dynamic();
      case ExprKind::kBoolLit:
        return Type::Boolean();
      case ExprKind::kNumberLit:
        return expr.is_decimal ? Type::Decimal() : Type::Integer();
      case ExprKind::kStringLit:
        return Type::String();
      case ExprKind::kListLit:
        return ListLiteralType(expr);
      case ExprKind::kMapLit: {
        for (const NamedArg& entry : expr.named) TypeOf(*entry.value);
        return Type::Map();
      }
      case ExprKind::kIdent:
        return IdentType(expr);
      case ExprKind::kBinary:
        return BinaryType(expr);
      case ExprKind::kUnary: {
        Type operand = TypeOf(*expr.a);
        if (expr.unary_op == UnaryOp::kNot) return Type::Boolean();
        return operand.is_numeric() ? operand : Type::Dynamic();
      }
      case ExprKind::kTernary: {
        Type cond = TypeOf(*expr.a);
        Type then_t = expr.b ? TypeOf(*expr.b) : cond;  // elvis reuses cond
        Type else_t = TypeOf(*expr.c);
        return Type::Join(then_t, else_t);
      }
      case ExprKind::kCall:
        return CallType(expr);
      case ExprKind::kMember:
        return MemberType(TypeOf(*expr.a), expr.text, expr);
      case ExprKind::kIndex: {
        Type recv = TypeOf(*expr.a);
        TypeOf(*expr.b);
        if (recv.is_list()) return recv.element();
        return Type::Dynamic();
      }
      case ExprKind::kClosure:
        return Type::Closure();
      case ExprKind::kAssign:
        return AssignType(expr);
    }
    return Type::Dynamic();
  }

  Type ListLiteralType(const Expr& expr) {
    Type element = Type::Dynamic();
    bool first = true;
    for (const ExprPtr& item : expr.items) {
      Type t = TypeOf(*item);
      if (first) {
        element = t;
        first = false;
        continue;
      }
      Type joined = Type::Join(element, t);
      if (joined.is_dynamic() && !element.is_dynamic() && !t.is_dynamic()) {
        // Heterogeneous collection: a documented Translator limitation
        // (paper §11, limitation 5).
        Problem(expr.line, "heterogeneous collection: elements of type " +
                               element.ToString() + " and " + t.ToString() +
                               " in one list literal (unsupported by the "
                               "G2J translation)");
      }
      element = joined;
    }
    return Type::ListOf(element);
  }

  Type IdentType(const Expr& expr) {
    const std::string& name = expr.text;
    if (name == "location") return Type::Map();
    if (name == "app") return Type::Map();
    if (name == "it") return VariableType("it");
    if (name == "Math") return Type::Map();
    return VariableType(name);
  }

  Type BinaryType(const Expr& expr) {
    Type lhs = TypeOf(*expr.a);
    Type rhs = TypeOf(*expr.b);
    switch (expr.binary_op) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
      case BinaryOp::kIn:
        return Type::Boolean();
      case BinaryOp::kAdd:
        // Groovy `+` on lists concatenates (paper Fig. 6); on strings
        // concatenates; on numbers adds.
        if (lhs.is_list() || rhs.is_list()) {
          return Type::Join(lhs.is_list() ? lhs : Type::ListOf(lhs),
                            rhs.is_list() ? rhs : Type::ListOf(rhs));
        }
        if (lhs.kind() == TypeKind::kString || rhs.kind() == TypeKind::kString) {
          return Type::String();
        }
        if (lhs.is_numeric() && rhs.is_numeric()) return Type::Join(lhs, rhs);
        return Type::Dynamic();
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kMod:
        if (lhs.is_numeric() && rhs.is_numeric()) return Type::Join(lhs, rhs);
        return Type::Dynamic();
      case BinaryOp::kDiv:
        if (lhs.is_numeric() && rhs.is_numeric()) return Type::Decimal();
        return Type::Dynamic();
    }
    return Type::Dynamic();
  }

  Type AssignType(const Expr& expr) {
    Type value = TypeOf(*expr.b);
    const Expr& target = *expr.a;
    if (target.kind == ExprKind::kIdent) {
      if (expr.assign_op == AssignOp::kAssign) {
        UpdateVariable(target.text, value);
      } else {
        UpdateVariable(target.text, Type::Join(TypeOf(target), value));
      }
    } else if (target.kind == ExprKind::kMember &&
               target.a->kind == ExprKind::kIdent &&
               target.a->text == "state") {
      // Track `state.<field>` types as pseudo-globals.
      JoinInto(info_.globals, "state." + target.text, value);
    } else {
      TypeOf(target);
    }
    return value;
  }

  /// Closure return type with `it`/params bound to `element`.
  Type ClosureResult(const Expr& closure, const Type& element) {
    PushScope();
    if (closure.params.empty()) {
      DeclareLocal("it", element);
    } else {
      for (const std::string& p : closure.params) DeclareLocal(p, element);
    }
    Type return_type = Type::Void();
    AnalyzeBody(closure.body, return_type);
    PopScope();
    return return_type;
  }

  Type CallType(const Expr& expr) {
    // Evaluate named arguments for their side effects on inference.
    for (const NamedArg& arg : expr.named) TypeOf(*arg.value);

    if (!expr.a) {
      return FreeCallType(expr);
    }
    Type recv = TypeOf(*expr.a);
    return MethodCallType(recv, expr);
  }

  Type FreeCallType(const Expr& expr) {
    const std::string& name = expr.text;
    // User-defined methods: join argument types into parameter types and
    // use the method's inferred return type (the §6 "calling context"
    // consultation).
    if (const MethodDecl* method = app_.FindMethod(name)) {
      for (std::size_t i = 0; i < expr.items.size(); ++i) {
        Type arg = TypeOf(*expr.items[i]);
        if (i < method->params.size()) {
          JoinInto(info_.params, method->name + "." + method->params[i], arg);
        }
      }
      return info_.ReturnType(name);
    }
    Type api_type;
    if (PlatformFunctionType(name, api_type)) {
      for (const ExprPtr& arg : expr.items) TypeOf(*arg);
      return api_type;
    }
    for (const ExprPtr& arg : expr.items) TypeOf(*arg);
    Problem(expr.line, "unknown function '" + name + "'");
    return Type::Dynamic();
  }

  Type MethodCallType(const Type& recv, const Expr& expr) {
    const std::string& name = expr.text;
    for (const ExprPtr& arg : expr.items) {
      if (arg->kind != ExprKind::kClosure) TypeOf(*arg);
    }

    const Expr* closure = nullptr;
    if (!expr.items.empty() &&
        expr.items.back()->kind == ExprKind::kClosure) {
      closure = expr.items.back().get();
    }

    if (recv.is_list() || recv.is_dynamic()) {
      const Type element = recv.is_list() ? recv.element() : Type::Dynamic();
      if (name == "each") {
        if (closure) ClosureResult(*closure, element);
        return recv;
      }
      if (name == "find" || name == "first" || name == "last" ||
          name == "min" || name == "max") {
        if (closure) ClosureResult(*closure, element);
        return element;
      }
      if (name == "findAll" || name == "sort" || name == "unique" ||
          name == "reverse") {
        if (closure) ClosureResult(*closure, element);
        return recv.is_list() ? recv : Type::ListOf(element);
      }
      if (name == "collect") {
        Type mapped =
            closure ? ClosureResult(*closure, element) : Type::Dynamic();
        return Type::ListOf(mapped);
      }
      if (name == "any" || name == "every" || name == "contains" ||
          name == "isEmpty") {
        if (closure) ClosureResult(*closure, element);
        return Type::Boolean();
      }
      if (name == "size" || name == "count" || name == "indexOf") {
        return Type::Integer();
      }
      if (name == "sum") return element;
      if (name == "join") return Type::String();
    }

    if (recv.kind() == TypeKind::kString || recv.is_dynamic()) {
      if (name == "toInteger") return Type::Integer();
      if (name == "toDouble" || name == "toBigDecimal" || name == "toFloat") {
        return Type::Decimal();
      }
      if (name == "toLowerCase" || name == "toUpperCase" || name == "trim" ||
          name == "toString" || name == "replaceAll") {
        return Type::String();
      }
      if (name == "startsWith" || name == "endsWith" ||
          name == "equalsIgnoreCase") {
        return Type::Boolean();
      }
      if (name == "length") return Type::Integer();
    }

    if (recv.is_device()) {
      if (name == "currentValue" || name == "latestValue") {
        return Type::Dynamic();
      }
      if (name == "currentState" || name == "latestState") return Type::Map();
      if (name == "hasCapability" || name == "hasCommand" ||
          name == "hasAttribute") {
        return Type::Boolean();
      }
      // Any other method on a device is an actuator command: on(), off(),
      // lock(), setLevel(50), ... — all void.
      return Type::Void();
    }

    // Map/unknown receivers.
    if (name == "toString") return Type::String();
    if (name == "get" || name == "put") return Type::Dynamic();
    if (name == "containsKey") return Type::Boolean();
    if (name == "abs" || name == "max" || name == "min" ||
        name == "round" || name == "floor" || name == "ceil") {
      return Type::Decimal();
    }
    if (name == "debug" || name == "info" || name == "warn" ||
        name == "error" || name == "trace") {
      return Type::Void();  // log.debug(...)
    }
    if (closure) ClosureResult(*closure, Type::Dynamic());
    return Type::Dynamic();
  }

  Type MemberType(const Type& recv, const std::string& name,
                  const Expr& expr) {
    // `location.mode`, `location.modes`.
    if (expr.a->kind == ExprKind::kIdent && expr.a->text == "location") {
      if (name == "mode") return Type::String();
      if (name == "modes") return Type::ListOf(Type::String());
      if (name == "name") return Type::String();
      return Type::Dynamic();
    }
    if (expr.a->kind == ExprKind::kIdent && expr.a->text == "state") {
      auto it = info_.globals.find("state." + name);
      return it != info_.globals.end() ? it->second : Type::Dynamic();
    }

    if (recv.is_device()) {
      if (strings::StartsWith(name, "current") && name.size() > 7) {
        std::string attr = name.substr(7);
        attr[0] = static_cast<char>(
            std::tolower(static_cast<unsigned char>(attr[0])));
        return NumericAttributes().count(attr) ? Type::Decimal()
                                               : Type::String();
      }
      if (name == "id" || name == "label" || name == "displayName" ||
          name == "name") {
        return Type::String();
      }
      return Type::Dynamic();
    }

    if (recv.is_list()) {
      if (name == "size") return Type::Integer();
      if (name == "first" || name == "last") return recv.element();
      // Groovy "spread" property read: devices.currentSwitch is the list
      // of per-device readings.
      Type element_member = MemberOfElement(recv.element(), name);
      return Type::ListOf(element_member);
    }

    // Event object fields (events are modeled as Map).
    if (name == "value" || name == "name" || name == "displayName" ||
        name == "descriptionText" || name == "deviceId") {
      return Type::String();
    }
    if (name == "numericValue" || name == "doubleValue" ||
        name == "floatValue") {
      return Type::Decimal();
    }
    if (name == "integerValue" || name == "longValue") {
      return Type::Integer();
    }
    if (name == "isStateChange" || name == "physical" || name == "digital") {
      return Type::Boolean();
    }
    if (name == "device") return Type::Device("actuator");
    return Type::Dynamic();
  }

  Type MemberOfElement(const Type& element, const std::string& name) {
    if (element.is_device() && strings::StartsWith(name, "current") &&
        name.size() > 7) {
      std::string attr = name.substr(7);
      attr[0] = static_cast<char>(
          std::tolower(static_cast<unsigned char>(attr[0])));
      return NumericAttributes().count(attr) ? Type::Decimal()
                                             : Type::String();
    }
    return Type::Dynamic();
  }
};

}  // namespace

TypeInfo InferTypes(const App& app) {
  return Inference(app).Run();
}

}  // namespace iotsan::dsl
