#include "dsl/type.hpp"

#include <cctype>

namespace iotsan::dsl {

Type Type::Device(std::string capability) {
  Type t(TypeKind::kDevice);
  t.capability_ = std::move(capability);
  return t;
}

Type Type::ListOf(const Type& element) {
  Type t(TypeKind::kList);
  t.element_ = std::make_shared<Type>(element);
  return t;
}

Type Type::element() const {
  if (kind_ == TypeKind::kList && element_) return *element_;
  return Dynamic();
}

Type Type::Join(const Type& a, const Type& b) {
  if (a == b) return a;
  if (a.is_dynamic()) return b;
  if (b.is_dynamic()) return a;
  if (a.is_numeric() && b.is_numeric()) return Decimal();
  if (a.kind() == TypeKind::kList && b.kind() == TypeKind::kList) {
    return ListOf(Join(a.element(), b.element()));
  }
  // Void joins transparently (a branch without a return).
  if (a.kind() == TypeKind::kVoid) return b;
  if (b.kind() == TypeKind::kVoid) return a;
  return Dynamic();
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kDynamic: return "def";
    case TypeKind::kVoid: return "void";
    case TypeKind::kBoolean: return "Boolean";
    case TypeKind::kInteger: return "Integer";
    case TypeKind::kDecimal: return "Decimal";
    case TypeKind::kString: return "String";
    case TypeKind::kDevice: return "Device<" + capability_ + ">";
    case TypeKind::kList: return "List<" + element().ToString() + ">";
    case TypeKind::kMap: return "Map";
    case TypeKind::kClosure: return "Closure";
  }
  return "def";
}

namespace {
/// "temperatureMeasurement" -> "TemperatureMeasurement".
std::string Capitalize(const std::string& s) {
  std::string out = s;
  if (!out.empty()) {
    out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}
}  // namespace

std::string Type::ToJavaString() const {
  switch (kind_) {
    case TypeKind::kDynamic: return "Object";
    case TypeKind::kVoid: return "void";
    case TypeKind::kBoolean: return "boolean";
    case TypeKind::kInteger: return "int";
    case TypeKind::kDecimal: return "double";
    case TypeKind::kString: return "String";
    case TypeKind::kDevice: return "ST" + Capitalize(capability_);
    case TypeKind::kList: return element().ToJavaString() + "[]";
    case TypeKind::kMap: return "java.util.Map";
    case TypeKind::kClosure: return "Closure";
  }
  return "Object";
}

bool Type::operator==(const Type& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == TypeKind::kDevice) return capability_ == other.capability_;
  if (kind_ == TypeKind::kList) return element() == other.element();
  return true;
}

}  // namespace iotsan::dsl
