// Abstract syntax tree for SmartScript apps.
//
// The AST is a tagged-node design (one struct per syntactic class with a
// kind discriminator) rather than a virtual hierarchy: every consumer in
// iotsan — the static analyzer (src/ir), the evaluator (src/model), the
// type-inference pass, and the Promela emitter (src/promela) — switches
// exhaustively over node kinds, which a closed enum makes checkable.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace iotsan::dsl {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind {
  kNullLit,
  kBoolLit,
  kNumberLit,
  kStringLit,
  kListLit,      // [a, b, c]
  kMapLit,       // [key: v, ...]  (Groovy map literal)
  kIdent,
  kBinary,       // arithmetic / comparison / logic / 'in'
  kUnary,        // -x, !x
  kTernary,      // c ? a : b   and elvis a ?: b (cond == lhs)
  kCall,         // f(args) or recv.m(args); named args kept separately
  kMember,       // recv.name  (property access; '?.': safe member)
  kIndex,        // recv[expr]
  kClosure,      // { params -> stmts }  (implicit param: it)
  kAssign,       // target = value, +=, -=
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kIn,
};

enum class UnaryOp { kNeg, kNot };

enum class AssignOp { kAssign, kAddAssign, kSubAssign };

/// One `key: value` named argument in a call or map literal entry.
struct NamedArg {
  std::string name;
  ExprPtr value;
};

struct Expr {
  ExprKind kind;
  int line = 0;
  int column = 0;

  // kBoolLit
  bool bool_value = false;
  // kNumberLit
  double number_value = 0;
  bool is_decimal = false;
  // kStringLit, kIdent, kMember (member name), kCall (callee name when
  // it is a plain identifier call)
  std::string text;

  // kBinary / kUnary / kAssign operators.
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNeg;
  AssignOp assign_op = AssignOp::kAssign;

  // Children.  Meaning depends on kind:
  //  kBinary: a=lhs, b=rhs. kUnary: a. kTernary: a=cond, b=then, c=else.
  //  kMember/kIndex: a=receiver (b=index for kIndex).
  //  kCall: a=receiver (may be null for free calls).
  //  kAssign: a=target, b=value.
  ExprPtr a, b, c;

  // kListLit elements; kCall positional arguments.
  std::vector<ExprPtr> items;
  // kMapLit entries; kCall named arguments.
  std::vector<NamedArg> named;

  // kMember with '?.'
  bool safe_navigation = false;

  // kClosure
  std::vector<std::string> params;          // empty => implicit `it`
  std::vector<StmtPtr> body;

  Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;
};

enum class StmtKind {
  kExpr,
  kVarDecl,   // def x = e
  kIf,
  kReturn,
  kForIn,     // for (x in e) { ... }
  kWhile,
  kBlock,
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  int column = 0;

  // kVarDecl: name + optional init (in `expr`).
  std::string name;

  // kExpr / kReturn value / kIf condition / kForIn iterable / kWhile cond.
  ExprPtr expr;

  // kIf: then/else branches. kForIn/kWhile/kBlock: body in `body`.
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;

  Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;
};

/// One `input "name", "type", title: ..., required: ..., multiple: ...`
/// declaration inside preferences (paper Fig. 1).
struct InputDecl {
  std::string name;        // app global this input defines
  std::string type;        // "capability.switch", "number", "enum", ...
  std::string title;
  std::string section;     // enclosing section description
  bool required = true;
  bool multiple = false;
  std::vector<std::string> options;  // for "enum" inputs
  ExprPtr default_value;             // optional `defaultValue:`
  int line = 0;
};

/// A `def name(params) { ... }` method.
struct MethodDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

/// A parsed SmartScript application.
struct App {
  // definition(...) metadata.
  std::string name;
  std::string namespace_;
  std::string author;
  std::string description;
  std::string category;

  std::vector<InputDecl> inputs;
  std::vector<MethodDecl> methods;

  /// Source name the app was parsed from (diagnostics / reports).
  std::string source_name;

  const MethodDecl* FindMethod(std::string_view method_name) const;
  const InputDecl* FindInput(std::string_view input_name) const;
};

/// Deep-copy helpers (AST nodes are move-only; corpus variants clone).
ExprPtr CloneExpr(const Expr& e);
StmtPtr CloneStmt(const Stmt& s);

}  // namespace iotsan::dsl
