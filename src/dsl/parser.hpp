// SmartScript parser: source text -> dsl::App.
#pragma once

#include <string_view>

#include "dsl/ast.hpp"

namespace iotsan::dsl {

/// Parses a complete SmartScript application: a `definition(...)` header,
/// an optional `preferences { ... }` block, and `def` methods.  Throws
/// iotsan::ParseError (syntax) or iotsan::SemanticError (structural
/// problems such as a missing definition block).
App ParseApp(std::string_view source, std::string_view source_name = "<app>");

/// Parses a single expression (used by the property language and tests).
ExprPtr ParseExpression(std::string_view source,
                        std::string_view source_name = "<expr>");

}  // namespace iotsan::dsl
