// Anchor-point type inference for SmartScript (paper §6).
//
// Groovy app code is dynamically typed but the Translator needs static
// types.  Following the paper, types are seeded at *anchor points* —
// assignments from literals, `input` declarations, return values of known
// platform APIs, and known platform objects — then propagated iteratively
// through assignments, method arguments and return values until a fixed
// point is reached.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dsl/ast.hpp"
#include "dsl/type.hpp"

namespace iotsan::dsl {

/// Result of running inference over one app.
struct TypeInfo {
  /// Inferred type of each app global (one per `input` plus `state`).
  std::map<std::string, Type> globals;
  /// Per-method local variable types, keyed "method.variable".
  std::map<std::string, Type> locals;
  /// Per-method parameter types, keyed "method.param".
  std::map<std::string, Type> params;
  /// Inferred return type of each method.
  std::map<std::string, Type> returns;
  /// Translation problems found (heterogeneous collections, unknown
  /// identifiers); each entry is a human-readable message.
  std::vector<std::string> problems;
  /// Number of propagation passes needed to reach the fixed point.
  int iterations = 0;

  Type LocalType(const std::string& method, const std::string& var) const;
  Type ReturnType(const std::string& method) const;
};

/// Runs type inference over `app`.  Never throws on type problems — they
/// are accumulated in TypeInfo::problems so the caller (the Translator)
/// can report all of them at once, as Bandera does.
TypeInfo InferTypes(const App& app);

/// Maps an `input` declaration type string to a SmartScript type:
/// "capability.switch" -> Device<switch> (List<...> when multiple),
/// "number" -> Integer, "decimal" -> Decimal, "bool" -> Boolean,
/// "enum"/"text"/"time"/"phone"/"contact"/"mode" -> String.
Type InputDeclType(const InputDecl& input);

}  // namespace iotsan::dsl
