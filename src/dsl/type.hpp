// Static types inferred for SmartScript programs.
//
// SmartScript (like Groovy, paper §6) is dynamically typed; the
// Translator must infer static types so the model can be lowered to a
// fixed-width state vector and to Promela.  This header defines the type
// lattice used by the inference pass in type_infer.hpp:
//
//        Dynamic (top: unknown)
//      /   |    \        ...
//  Integer Decimal String Boolean Device<cap> List<T> Map Closure Void
//
// Integer <: Decimal is the only subtyping edge (numeric widening).
#pragma once

#include <memory>
#include <string>

namespace iotsan::dsl {

enum class TypeKind {
  kDynamic,   // unknown / any
  kVoid,
  kBoolean,
  kInteger,
  kDecimal,
  kString,
  kDevice,    // a device reference with a capability, e.g. Device<switch>
  kList,      // List<element>
  kMap,       // string-keyed map with dynamic values
  kClosure,
};

/// An inferred SmartScript type.  Value type; cheap to copy.
class Type {
 public:
  Type() : kind_(TypeKind::kDynamic) {}

  static Type Dynamic() { return Type(TypeKind::kDynamic); }
  static Type Void() { return Type(TypeKind::kVoid); }
  static Type Boolean() { return Type(TypeKind::kBoolean); }
  static Type Integer() { return Type(TypeKind::kInteger); }
  static Type Decimal() { return Type(TypeKind::kDecimal); }
  static Type String() { return Type(TypeKind::kString); }
  static Type Map() { return Type(TypeKind::kMap); }
  static Type Closure() { return Type(TypeKind::kClosure); }
  static Type Device(std::string capability);
  static Type ListOf(const Type& element);

  TypeKind kind() const { return kind_; }
  bool is_dynamic() const { return kind_ == TypeKind::kDynamic; }
  bool is_numeric() const {
    return kind_ == TypeKind::kInteger || kind_ == TypeKind::kDecimal;
  }
  bool is_device() const { return kind_ == TypeKind::kDevice; }
  bool is_list() const { return kind_ == TypeKind::kList; }

  /// Capability name for kDevice ("switch", "lock", ...).
  const std::string& capability() const { return capability_; }

  /// Element type for kList; Dynamic for other kinds.
  Type element() const;

  /// Least upper bound used when merging flow paths and list elements.
  /// Integer⊔Decimal = Decimal; T⊔T = T; otherwise Dynamic.
  static Type Join(const Type& a, const Type& b);

  /// Rendering such as "Integer", "Device<switch>", "List<Device<switch>>".
  std::string ToString() const;

  /// Java-flavored rendering used in translation reports (paper Fig. 6):
  /// Device<switch> -> "STSwitch", List<...> -> "STSwitch[]".
  std::string ToJavaString() const;

  bool operator==(const Type& other) const;
  bool operator!=(const Type& other) const { return !(*this == other); }

 private:
  explicit Type(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  std::string capability_;
  std::shared_ptr<Type> element_;
};

}  // namespace iotsan::dsl
