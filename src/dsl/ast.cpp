#include "dsl/ast.hpp"

namespace iotsan::dsl {

const MethodDecl* App::FindMethod(std::string_view method_name) const {
  for (const MethodDecl& m : methods) {
    if (m.name == method_name) return &m;
  }
  return nullptr;
}

const InputDecl* App::FindInput(std::string_view input_name) const {
  for (const InputDecl& in : inputs) {
    if (in.name == input_name) return &in;
  }
  return nullptr;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->line = e.line;
  out->column = e.column;
  out->bool_value = e.bool_value;
  out->number_value = e.number_value;
  out->is_decimal = e.is_decimal;
  out->text = e.text;
  out->binary_op = e.binary_op;
  out->unary_op = e.unary_op;
  out->assign_op = e.assign_op;
  out->safe_navigation = e.safe_navigation;
  out->params = e.params;
  if (e.a) out->a = CloneExpr(*e.a);
  if (e.b) out->b = CloneExpr(*e.b);
  if (e.c) out->c = CloneExpr(*e.c);
  out->items.reserve(e.items.size());
  for (const ExprPtr& item : e.items) out->items.push_back(CloneExpr(*item));
  out->named.reserve(e.named.size());
  for (const NamedArg& arg : e.named) {
    out->named.push_back(NamedArg{arg.name, CloneExpr(*arg.value)});
  }
  out->body.reserve(e.body.size());
  for (const StmtPtr& s : e.body) out->body.push_back(CloneStmt(*s));
  return out;
}

StmtPtr CloneStmt(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->line = s.line;
  out->column = s.column;
  out->name = s.name;
  if (s.expr) out->expr = CloneExpr(*s.expr);
  out->body.reserve(s.body.size());
  for (const StmtPtr& child : s.body) out->body.push_back(CloneStmt(*child));
  out->else_body.reserve(s.else_body.size());
  for (const StmtPtr& child : s.else_body) {
    out->else_body.push_back(CloneStmt(*child));
  }
  return out;
}

}  // namespace iotsan::dsl
