// Token model for SmartScript, iotsan's Groovy-like smart-app language.
//
// SmartScript reproduces the analysis-relevant surface of the Groovy
// dialect SmartThings apps are written in (paper §2.1/§6): dynamic typing,
// `def` declarations, closures, list/map literals, Groovy "command call"
// syntax (`input "sensor", "capability.temperatureMeasurement"`), and the
// preferences/subscribe/schedule app-lifecycle DSL.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace iotsan::dsl {

enum class TokenKind : std::uint8_t {
  kEnd,
  kIdentifier,
  kNumber,      // integer or decimal literal
  kString,      // single- or double-quoted
  // Keywords.
  kDef,
  kIf,
  kElse,
  kFor,
  kWhile,
  kIn,
  kReturn,
  kTrue,
  kFalse,
  kNull,
  // Punctuation and operators.
  kLeftParen,
  kRightParen,
  kLeftBrace,
  kRightBrace,
  kLeftBracket,
  kRightBracket,
  kComma,
  kColon,
  kSemicolon,
  kDot,
  kSafeDot,     // ?.
  kArrow,       // ->
  kAssign,      // =
  kPlusAssign,  // +=
  kMinusAssign, // -=
  kEq,          // ==
  kNe,          // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAndAnd,
  kOrOr,
  kNot,
  kQuestion,    // ternary
  kElvis,       // ?:
};

/// Human-readable token-kind name for diagnostics.
std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Raw text for identifiers; decoded value for strings.
  std::string text;
  /// Numeric value when kind == kNumber.
  double number = 0;
  /// True when the numeric literal contained '.', i.e. is a decimal.
  bool is_decimal = false;
  /// 1-based source position.
  int line = 0;
  int column = 0;
  /// True if this token is the first on its source line.  Groovy-style
  /// command-call parsing is line-sensitive.
  bool starts_line = false;
};

}  // namespace iotsan::dsl
