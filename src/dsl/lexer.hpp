// SmartScript lexer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dsl/token.hpp"

namespace iotsan::dsl {

/// Tokenizes SmartScript source.  Supports // and /* */ comments,
/// single- and double-quoted strings with escapes, integer and decimal
/// literals.  Throws iotsan::ParseError on malformed input; the
/// `source_name` is included in error messages.
std::vector<Token> Tokenize(std::string_view source,
                            std::string_view source_name = "<input>");

}  // namespace iotsan::dsl
