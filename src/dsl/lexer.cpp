#include "dsl/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "util/error.hpp"

namespace iotsan::dsl {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kDef: return "'def'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kWhile: return "'while'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kNull: return "'null'";
    case TokenKind::kLeftParen: return "'('";
    case TokenKind::kRightParen: return "')'";
    case TokenKind::kLeftBrace: return "'{'";
    case TokenKind::kRightBrace: return "'}'";
    case TokenKind::kLeftBracket: return "'['";
    case TokenKind::kRightBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kSafeDot: return "'?.'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kElvis: return "'?:'";
  }
  return "unknown token";
}

namespace {

const std::unordered_map<std::string_view, TokenKind>& Keywords() {
  static const std::unordered_map<std::string_view, TokenKind> kKeywords = {
      {"def", TokenKind::kDef},       {"if", TokenKind::kIf},
      {"else", TokenKind::kElse},     {"for", TokenKind::kFor},
      {"while", TokenKind::kWhile},   {"in", TokenKind::kIn},
      {"return", TokenKind::kReturn}, {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},   {"null", TokenKind::kNull},
  };
  return kKeywords;
}

class Lexer {
 public:
  Lexer(std::string_view source, std::string_view source_name)
      : source_(source), source_name_(source_name) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    bool line_start = true;
    while (true) {
      line_start = SkipTrivia() || line_start;
      if (AtEnd()) break;
      Token token = Next();
      token.starts_line = line_start;
      line_start = false;
      tokens.push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.line = line_;
    end.column = column_;
    end.starts_line = line_start;
    tokens.push_back(std::move(end));
    return tokens;
  }

 private:
  std::string_view source_;
  std::string_view source_name_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;

  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }

  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(std::string(source_name_) + ":" + std::to_string(line_) +
                     ":" + std::to_string(column_) + ": " + message);
  }

  /// Skips whitespace and comments; returns true if a newline was crossed.
  bool SkipTrivia() {
    bool crossed_newline = false;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '\n') {
        crossed_newline = true;
        Advance();
      } else if (c == ' ' || c == '\t' || c == '\r') {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) {
          if (Peek() == '\n') crossed_newline = true;
          Advance();
        }
        if (AtEnd()) Fail("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return crossed_newline;
  }

  Token Make(TokenKind kind, int line, int column) const {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    return t;
  }

  Token Next() {
    const int line = line_;
    const int column = column_;
    char c = Peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      return LexIdentifier(line, column);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber(line, column);
    }
    if (c == '"' || c == '\'') {
      return LexString(line, column);
    }

    Advance();
    switch (c) {
      case '(': return Make(TokenKind::kLeftParen, line, column);
      case ')': return Make(TokenKind::kRightParen, line, column);
      case '{': return Make(TokenKind::kLeftBrace, line, column);
      case '}': return Make(TokenKind::kRightBrace, line, column);
      case '[': return Make(TokenKind::kLeftBracket, line, column);
      case ']': return Make(TokenKind::kRightBracket, line, column);
      case ',': return Make(TokenKind::kComma, line, column);
      case ':': return Make(TokenKind::kColon, line, column);
      case ';': return Make(TokenKind::kSemicolon, line, column);
      case '.': return Make(TokenKind::kDot, line, column);
      case '%': return Make(TokenKind::kPercent, line, column);
      case '*': return Make(TokenKind::kStar, line, column);
      case '/': return Make(TokenKind::kSlash, line, column);
      case '+':
        if (Peek() == '=') { Advance(); return Make(TokenKind::kPlusAssign, line, column); }
        return Make(TokenKind::kPlus, line, column);
      case '-':
        if (Peek() == '>') { Advance(); return Make(TokenKind::kArrow, line, column); }
        if (Peek() == '=') { Advance(); return Make(TokenKind::kMinusAssign, line, column); }
        return Make(TokenKind::kMinus, line, column);
      case '=':
        if (Peek() == '=') { Advance(); return Make(TokenKind::kEq, line, column); }
        return Make(TokenKind::kAssign, line, column);
      case '!':
        if (Peek() == '=') { Advance(); return Make(TokenKind::kNe, line, column); }
        return Make(TokenKind::kNot, line, column);
      case '<':
        if (Peek() == '=') { Advance(); return Make(TokenKind::kLe, line, column); }
        return Make(TokenKind::kLt, line, column);
      case '>':
        if (Peek() == '=') { Advance(); return Make(TokenKind::kGe, line, column); }
        return Make(TokenKind::kGt, line, column);
      case '&':
        if (Peek() == '&') { Advance(); return Make(TokenKind::kAndAnd, line, column); }
        Fail("unexpected '&' (did you mean '&&'?)");
      case '|':
        if (Peek() == '|') { Advance(); return Make(TokenKind::kOrOr, line, column); }
        Fail("unexpected '|' (did you mean '||'?)");
      case '?':
        if (Peek() == '.') { Advance(); return Make(TokenKind::kSafeDot, line, column); }
        if (Peek() == ':') { Advance(); return Make(TokenKind::kElvis, line, column); }
        return Make(TokenKind::kQuestion, line, column);
      default:
        Fail(std::string("unexpected character '") + c + "'");
    }
  }

  Token LexIdentifier(int line, int column) {
    std::size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '$')) {
      Advance();
    }
    std::string_view text = source_.substr(start, pos_ - start);
    auto it = Keywords().find(text);
    Token t = Make(it != Keywords().end() ? it->second : TokenKind::kIdentifier,
                   line, column);
    t.text = std::string(text);
    return t;
  }

  Token LexNumber(int line, int column) {
    std::size_t start = pos_;
    bool is_decimal = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    // A '.' is part of the number only if followed by a digit; otherwise it
    // is a member access (e.g. `5.toString()` is not SmartScript anyway).
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_decimal = true;
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    const std::string text(source_.substr(start, pos_ - start));
    Token t = Make(TokenKind::kNumber, line, column);
    t.text = text;
    t.number = std::strtod(text.c_str(), nullptr);
    t.is_decimal = is_decimal;
    return t;
  }

  Token LexString(int line, int column) {
    const char quote = Advance();
    std::string value;
    while (true) {
      if (AtEnd()) Fail("unterminated string literal");
      char c = Advance();
      if (c == quote) break;
      if (c == '\n') Fail("newline in string literal");
      if (c == '\\') {
        if (AtEnd()) Fail("unterminated escape sequence");
        char e = Advance();
        switch (e) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          case '\\': value += '\\'; break;
          case '\'': value += '\''; break;
          case '"': value += '"'; break;
          case '$': value += '$'; break;
          default: Fail(std::string("unknown escape '\\") + e + "'");
        }
      } else {
        value += c;
      }
    }
    Token t = Make(TokenKind::kString, line, column);
    t.text = std::move(value);
    return t;
  }
};

}  // namespace

std::vector<Token> Tokenize(std::string_view source,
                            std::string_view source_name) {
  return Lexer(source, source_name).Run();
}

}  // namespace iotsan::dsl
