// Partial-order reduction and COLLAPSE compression tests (paper §8 /
// Spin's COLLAPSE): the reduced search must report exactly the
// violations of the full interleaving expansion, compressed store keys
// must never change which states the search visits, and the codec's
// component interning must collide exactly when full serializations
// collide.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/collapse.hpp"
#include "config/builder.hpp"
#include "core/sanitizer.hpp"
#include "ir/analyzer.hpp"
#include "model/system_model.hpp"
#include "telemetry/telemetry.hpp"

namespace iotsan {
namespace {

// The interleaving-explosion system of Table 7b, shrunk: two corpus apps
// race on the same switches (conflicting footprints force full
// expansion) while the motion apps commute (singleton ample sets fire).
config::Deployment ConflictSystem() {
  config::DeploymentBuilder b("por conflict system");
  b.Device("sw1", "smartSwitch", {"light"});
  b.Device("sw2", "smartSwitch", {"light"});
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("lightMeter", "illuminanceSensor");
  b.Device("motion1", "motionSensor");
  b.App("Brighten Dark Places")
      .Devices("contact1", {"frontDoor"})
      .Devices("luminance1", {"lightMeter"})
      .Devices("switches", {"sw1", "sw2"});
  b.App("Let There Be Dark!")
      .Devices("contact1", {"frontDoor"})
      .Devices("switches", {"sw1", "sw2"});
  b.App("Brighten My Path")
      .Devices("motion1", {"motion1"})
      .Devices("switches", {"sw2"});
  return b.Build();
}

// The headline violation pair (§3 P06): mode change unlocking the door.
config::Deployment UnlockSystem() {
  config::DeploymentBuilder b("por unlock system");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("motion1", "motionSensor");
  b.Device("sw1", "smartSwitch", {"light"});
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  b.App("Brighten My Path")
      .Devices("motion1", {"motion1"})
      .Devices("switches", {"sw1"});
  return b.Build();
}

core::SanitizerReport RunConcurrent(const config::Deployment& deployment,
                                    bool por, bool compression, int jobs,
                                    int events = 3) {
  core::Sanitizer sanitizer(deployment);
  core::SanitizerOptions options;
  options.use_dependency_analysis = false;
  options.check.max_events = events;
  options.check.scheduling = model::Scheduling::kConcurrent;
  options.check.por = por;
  options.check.state_compression = compression;
  options.check.jobs = jobs;
  return sanitizer.Check(options);
}

void ExpectSameViolations(const core::SanitizerReport& a,
                          const core::SanitizerReport& b) {
  EXPECT_EQ(a.ViolatedPropertyIds(), b.ViolatedPropertyIds());
  ASSERT_EQ(a.per_set_violations.size(), b.per_set_violations.size());
  for (std::size_t i = 0; i < a.per_set_violations.size(); ++i) {
    const checker::Violation& va = a.per_set_violations[i];
    const checker::Violation& vb = b.per_set_violations[i];
    EXPECT_EQ(va.property_id, vb.property_id);
    EXPECT_EQ(va.depth, vb.depth);
    EXPECT_EQ(va.apps, vb.apps);
    EXPECT_EQ(va.steps, vb.steps);
    EXPECT_EQ(va.detail, vb.detail);
  }
}

TEST(PartialOrderReductionTest, MatchesFullSearchOnConflictSystem) {
  const config::Deployment deployment = ConflictSystem();
  core::SanitizerReport full = RunConcurrent(deployment, false, false, 1);
  core::SanitizerReport reduced = RunConcurrent(deployment, true, false, 1);
  ASSERT_TRUE(full.completed);
  ASSERT_TRUE(reduced.completed);
  EXPECT_FALSE(full.ViolatedPropertyIds().empty());
  ExpectSameViolations(full, reduced);
  // Soundness never costs coverage: the same stable states are reached.
  EXPECT_EQ(full.states_explored, reduced.states_explored);
  // The reduction only ever drops interleavings.
  EXPECT_LE(reduced.transitions, full.transitions);
}

TEST(PartialOrderReductionTest, MatchesFullSearchOnUnlockSystem) {
  const config::Deployment deployment = UnlockSystem();
  core::SanitizerReport full = RunConcurrent(deployment, false, false, 1);
  core::SanitizerReport reduced = RunConcurrent(deployment, true, false, 1);
  ASSERT_TRUE(full.completed);
  ASSERT_TRUE(reduced.completed);
  EXPECT_FALSE(full.ViolatedPropertyIds().empty());
  ExpectSameViolations(full, reduced);
  EXPECT_EQ(full.states_explored, reduced.states_explored);
}

TEST(PartialOrderReductionTest, ParallelSearchIsByteIdentical) {
  // Canonical-min violation dedup holds under POR: --jobs 4 must report
  // byte-identical violations to the serial reduced search, which in
  // turn matches the unreduced verdicts.
  const config::Deployment deployment = ConflictSystem();
  core::SanitizerReport serial = RunConcurrent(deployment, true, true, 1);
  core::SanitizerReport parallel = RunConcurrent(deployment, true, true, 4);
  ASSERT_TRUE(serial.completed);
  ASSERT_TRUE(parallel.completed);
  ExpectSameViolations(serial, parallel);
  EXPECT_EQ(serial.states_explored, parallel.states_explored);

  core::SanitizerReport full = RunConcurrent(deployment, false, false, 1);
  ExpectSameViolations(full, parallel);
}

// Two apps react to the same motion sensor but drive different,
// property-free switches: their dispatches commute, so the ample-set
// check must collapse the 2-element queue to a singleton.
constexpr const char* kLeftApp = R"(
definition(name: "LeftLight", namespace: "t")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "swA", "capability.switch"
    }
}
def installed() {
    subscribe(m1, "motion.active", handler)
}
def handler(evt) {
    swA.on()
}
)";

constexpr const char* kRightApp = R"(
definition(name: "RightLight", namespace: "t")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "swB", "capability.switch"
    }
}
def installed() {
    subscribe(m1, "motion.active", handler)
}
def handler(evt) {
    swB.on()
}
)";

model::SystemModel CommutingModel() {
  config::DeploymentBuilder b("commuting home");
  b.Device("m1", "motionSensor");
  b.Device("swA", "smartSwitch");  // no roles: writes stay invisible
  b.Device("swB", "smartSwitch");
  b.App("LeftLight").Devices("m1", {"m1"}).Devices("swA", {"swA"});
  b.App("RightLight").Devices("m1", {"m1"}).Devices("swB", {"swB"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kLeftApp, "LeftLight"));
  apps.push_back(ir::AnalyzeSource(kRightApp, "RightLight"));
  return model::SystemModel(b.Build(), std::move(apps));
}

// Conflicting variant: the motion event fans out to two actuations
// (swA, swB) whose *subscribers* both write swC — the pending device
// events carry overlapping write footprints, so the ample check must
// refuse the singleton and fall back to full expansion.
constexpr const char* kFanLeftApp = R"(
definition(name: "FanLeft", namespace: "t")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "swA", "capability.switch"
        input "swB", "capability.switch"
        input "swC", "capability.switch"
    }
}
def installed() {
    subscribe(m1, "motion.active", fan)
    subscribe(swB, "switch.on", react)
}
def fan(evt) {
    swA.on()
}
def react(evt) {
    swC.on()
}
)";

constexpr const char* kFanRightApp = R"(
definition(name: "FanRight", namespace: "t")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "swA", "capability.switch"
        input "swB", "capability.switch"
        input "swC", "capability.switch"
    }
}
def installed() {
    subscribe(m1, "motion.active", fan)
    subscribe(swA, "switch.on", react)
}
def fan(evt) {
    swB.on()
}
def react(evt) {
    swC.off()
}
)";

model::SystemModel ConflictingModel() {
  config::DeploymentBuilder b("conflicting home");
  b.Device("m1", "motionSensor");
  b.Device("swA", "smartSwitch");
  b.Device("swB", "smartSwitch");
  b.Device("swC", "smartSwitch");
  b.App("FanLeft")
      .Devices("m1", {"m1"})
      .Devices("swA", {"swA"})
      .Devices("swB", {"swB"})
      .Devices("swC", {"swC"});
  b.App("FanRight")
      .Devices("m1", {"m1"})
      .Devices("swA", {"swA"})
      .Devices("swB", {"swB"})
      .Devices("swC", {"swC"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kFanLeftApp, "FanLeft"));
  apps.push_back(ir::AnalyzeSource(kFanRightApp, "FanRight"));
  return model::SystemModel(b.Build(), std::move(apps));
}

void RunPor(const model::SystemModel& model) {
  checker::Checker checker(model);
  checker::CheckOptions options;
  options.max_events = 2;
  options.scheduling = model::Scheduling::kConcurrent;
  options.por = true;
  checker.Run(options);
}

TEST(PartialOrderReductionTest, TicksTelemetryCounters) {
  telemetry::Registry registry;
  telemetry::SetActive(&registry);
  // Commuting dispatches: one motion event queues both handlers and the
  // ample check collapses the pair to a singleton.
  RunPor(CommutingModel());
  // Conflicting dispatches (the pending actuation events feed handlers
  // that both write swC): the ample check must refuse and fall back to
  // full expansion.
  RunPor(ConflictingModel());
  telemetry::SetActive(nullptr);
  const std::vector<telemetry::Sample> samples = registry.Snapshot();
  std::uint64_t singletons = 0;
  std::uint64_t expansions = 0;
  std::uint64_t pruned = 0;
  for (const telemetry::Sample& sample : samples) {
    if (sample.name == "por.ample_singletons") singletons = sample.value;
    if (sample.name == "por.full_expansions") expansions = sample.value;
    if (sample.name == "por.interleavings_pruned") pruned = sample.value;
  }
  EXPECT_GT(singletons, 0u);
  EXPECT_GT(expansions, 0u);
  EXPECT_GE(pruned, singletons);
}

TEST(StateCompressionTest, VerdictNeutralAndSmaller) {
  // Depth 5 reaches enough states that the intern pools' fixed arena
  // cost amortizes — the regime compression exists for.
  const config::Deployment deployment = ConflictSystem();
  core::SanitizerReport plain =
      RunConcurrent(deployment, false, false, 1, /*events=*/5);
  core::SanitizerReport collapsed =
      RunConcurrent(deployment, false, true, 1, /*events=*/5);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(collapsed.completed);
  ExpectSameViolations(plain, collapsed);
  // The encoding collides iff the serializations collide, so the visited
  // set — and with it every counter — is identical.
  EXPECT_EQ(plain.states_explored, collapsed.states_explored);
  EXPECT_EQ(plain.states_matched, collapsed.states_matched);
  EXPECT_EQ(plain.store_entries, collapsed.store_entries);
  // Compression diagnostics are populated and the store got cheaper.
  EXPECT_GT(collapsed.compress_pool_entries, 0u);
  EXPECT_GT(collapsed.compress_lookups, 0u);
  EXPECT_GT(collapsed.compress_hits, 0u);
  EXPECT_GT(collapsed.store_bytes_per_state, 0.0);
  EXPECT_LT(collapsed.store_bytes_per_state, plain.store_bytes_per_state);
}

// ---- Codec round-trip --------------------------------------------------------

constexpr const char* kStatefulApp = R"(
definition(name: "Stateful", namespace: "t")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "sw1", "capability.switch"
    }
}
def installed() {
    subscribe(m1, "motion.active", handler)
}
def handler(evt) {
    state.count = 1
    runIn(60, delayed)
}
def delayed() {
    sw1.off()
}
)";

model::SystemModel StatefulModel() {
  config::DeploymentBuilder b("codec home");
  b.Device("m1", "motionSensor");
  b.Device("sw1", "smartSwitch", {"light"});
  b.App("Stateful").Devices("m1", {"m1"}).Devices("sw1", {"sw1"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kStatefulApp, "Stateful"));
  return model::SystemModel(b.Build(), std::move(apps));
}

TEST(CollapseCodecTest, EncodedKeysCollideIffSerializationsCollide) {
  model::SystemModel model = StatefulModel();
  checker::CollapseCodec codec(model);

  // A spread of states differing in exactly one component each — plus
  // deliberate duplicates — covering devices, mode, app state, timers.
  std::vector<model::SystemState> states;
  const model::SystemState base = model.MakeInitialState();
  states.push_back(base);
  states.push_back(base);  // duplicate: must collide
  for (std::size_t d = 0; d < base.devices.size(); ++d) {
    for (std::size_t i = 0; i < base.devices[d].values.size(); ++i) {
      model::SystemState s = base;
      s.devices[d].values[i] = static_cast<std::int16_t>(1 - s.devices[d].values[i]);
      states.push_back(s);
      s.devices[d].physical[i] = static_cast<std::int16_t>(
          s.devices[d].physical[i] + 1);
      states.push_back(s);
    }
    model::SystemState offline = base;
    offline.devices[d].online = false;
    states.push_back(offline);
  }
  {
    model::SystemState s = base;
    s.mode = 1;
    states.push_back(s);
  }
  {
    model::SystemState s = base;
    s.app_state[0]["count"] = model::Value::Number(1);
    states.push_back(s);
    s.app_state[0]["count"] = model::Value::Number(2);
    states.push_back(s);
    s.app_state[0]["flag"] = model::Value::Bool(true);
    states.push_back(s);
  }
  {
    model::SystemState s = base;
    s.timers.push_back({0, 0});
    states.push_back(s);
    states.push_back(s);  // duplicate with a pending timer
    s.timers.push_back({0, 0});
    states.push_back(s);  // timer count matters
  }

  std::vector<std::vector<std::uint8_t>> serialized;
  std::vector<std::vector<std::uint8_t>> encoded;
  std::vector<std::uint8_t> scratch;
  for (const model::SystemState& state : states) {
    serialized.push_back(state.Serialize());
    std::vector<std::uint8_t> key;
    codec.Encode(state, key, scratch);
    encoded.push_back(std::move(key));
  }

  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = i + 1; j < states.size(); ++j) {
      EXPECT_EQ(serialized[i] == serialized[j], encoded[i] == encoded[j])
          << "codec injectivity broken between states " << i << " and " << j;
    }
  }

  // Re-encoding is stable: the pools hand back the same indices.
  std::vector<std::uint8_t> again;
  codec.Encode(states.front(), again, scratch);
  EXPECT_EQ(again, encoded.front());
  EXPECT_GT(codec.pool_entries(), 0u);
  EXPECT_GT(codec.hits(), 0u);
  EXPECT_EQ(codec.states_encoded(), states.size() + 1);
}

}  // namespace
}  // namespace iotsan
