// Behavioural scenarios: multi-event walks through corpus apps with
// non-trivial state machines, driven through the cascade engine exactly
// as the checker drives them.
#include <gtest/gtest.h>

#include <cstdlib>

#include "config/builder.hpp"
#include "corpus/corpus.hpp"
#include "ir/analyzer.hpp"
#include "model/engine.hpp"

namespace iotsan::model {
namespace {

class Scenario {
 public:
  Scenario(config::Deployment deployment,
           const std::vector<std::string>& app_names) {
    std::vector<ir::AnalyzedApp> apps;
    for (const std::string& name : app_names) {
      apps.push_back(
          ir::AnalyzeSource(corpus::FindApp(name)->source, name));
    }
    model_ = std::make_unique<SystemModel>(std::move(deployment),
                                           std::move(apps));
    engine_ = std::make_unique<CascadeEngine>(*model_);
    state_ = model_->MakeInitialState();
  }

  /// Fires a sensor event (by device id, attribute, symbolic/numeric
  /// value) and drains the cascade; returns the cascade log.
  CascadeLog Fire(const std::string& device_id, const std::string& attr,
                  const std::string& value) {
    ExternalEvent event;
    event.kind = ExternalEventSpec::Kind::kSensor;
    event.device = model_->DeviceIndex(device_id);
    event.attribute = model_->devices()[event.device].AttributeIndex(attr);
    const devices::AttributeSpec& spec =
        *model_->devices()[event.device].attributes()[event.attribute];
    event.value = spec.kind == devices::AttributeKind::kEnum
                      ? spec.IndexOfValue(value)
                      : spec.IndexOfNumeric(std::atoi(value.c_str()));
    auto outcomes =
        engine_->Apply(state_, event, {}, Scheduling::kSequential);
    state_ = outcomes[0].state;
    return outcomes[0].log;
  }

  CascadeLog Tick() {
    ExternalEvent event;
    event.kind = ExternalEventSpec::Kind::kTimerTick;
    auto outcomes =
        engine_->Apply(state_, event, {}, Scheduling::kSequential);
    state_ = outcomes[0].state;
    return outcomes[0].log;
  }

  std::string Attr(const std::string& device_id, const std::string& attr) {
    const int d = model_->DeviceIndex(device_id);
    const int a = model_->devices()[d].AttributeIndex(attr);
    return model_->devices()[d].attributes()[a]->ValueName(
        state_.devices[d].values[a]);
  }

  const SystemState& state() const { return state_; }

 private:
  std::unique_ptr<SystemModel> model_;
  std::unique_ptr<CascadeEngine> engine_;
  SystemState state_;
};

bool SentPush(const CascadeLog& log) {
  for (const ApiCallRecord& api : log.api_calls) {
    if (api.kind == ApiCallRecord::Kind::kPush) return true;
  }
  return false;
}

TEST(ScenarioTest, LaundryMonitorStateMachine) {
  config::DeploymentBuilder b("laundry");
  b.Device("washerOutlet", "smartOutlet");
  b.App("Laundry Monitor")
      .Devices("meter", {"washerOutlet"})
      .Number("wattThreshold", 50);
  Scenario s(b.Build(), {"Laundry Monitor"});

  // Cycle starts: power rises — no notification yet.
  EXPECT_FALSE(SentPush(s.Fire("washerOutlet", "power", "1500")));
  // Cycle ends: power drops — exactly one "laundry done" push.
  EXPECT_TRUE(SentPush(s.Fire("washerOutlet", "power", "0")));
  // A second drop without a new cycle must not re-notify.
  EXPECT_FALSE(SentPush(s.Fire("washerOutlet", "power", "100")));
}

TEST(ScenarioTest, ThermostatWindowCheckRestoresMode) {
  config::DeploymentBuilder b("hvac");
  b.Device("window1", "contactSensor");
  b.Device("window2", "contactSensor");
  b.Device("thermo", "thermostatDevice");
  b.App("Thermostat Window Check")
      .Devices("windows", {"window1", "window2"})
      .Devices("thermostat", {"thermo"});
  Scenario s(b.Build(), {"Thermostat Window Check"});

  // Put the thermostat into heat via a direct command path: open/close
  // with saved state exercises the remember/restore logic from "off",
  // so first drive it to heat through the app's own restore branch.
  EXPECT_EQ(s.Attr("thermo", "thermostatMode"), "off");
  s.Fire("window1", "contact", "open");
  EXPECT_EQ(s.Attr("thermo", "thermostatMode"), "off");  // paused (was off)
  s.Fire("window1", "contact", "closed");
  // savedMode was "off", so nothing to restore.
  EXPECT_EQ(s.Attr("thermo", "thermostatMode"), "off");
}

TEST(ScenarioTest, ButtonControllerToggles) {
  config::DeploymentBuilder b("buttons");
  b.Device("btn", "buttonController");
  b.Device("sw1", "smartSwitch");
  b.Device("sw2", "smartSwitch");
  b.App("Button Controller")
      .Devices("button1", {"btn"})
      .Devices("switches", {"sw1", "sw2"});
  Scenario s(b.Build(), {"Button Controller"});

  s.Fire("btn", "button", "pushed");
  EXPECT_EQ(s.Attr("sw1", "switch"), "on");
  EXPECT_EQ(s.Attr("sw2", "switch"), "on");
  s.Fire("btn", "button", "released");
  s.Fire("btn", "button", "pushed");
  EXPECT_EQ(s.Attr("sw1", "switch"), "off");
  EXPECT_EQ(s.Attr("sw2", "switch"), "off");
  // Hold always turns off.
  s.Fire("btn", "button", "held");
  EXPECT_EQ(s.Attr("sw1", "switch"), "off");
}

TEST(ScenarioTest, LeftItOpenOnlyFiresWhenStillOpen) {
  config::DeploymentBuilder b("door");
  b.Device("frontDoor", "contactSensor");
  b.App("Left It Open")
      .Devices("contact1", {"frontDoor"})
      .Number("openMinutes", 5);
  Scenario s(b.Build(), {"Left It Open"});

  // Open, then the timer fires while still open: notification.
  s.Fire("frontDoor", "contact", "open");
  ASSERT_EQ(s.state().timers.size(), 1u);
  EXPECT_TRUE(SentPush(s.Tick()));

  // Open then closed before the timer: no notification.
  s.Fire("frontDoor", "contact", "closed");
  s.Fire("frontDoor", "contact", "open");
  s.Fire("frontDoor", "contact", "closed");
  EXPECT_FALSE(SentPush(s.Tick()));
}

TEST(ScenarioTest, SmartNightlightRespectsLux) {
  config::DeploymentBuilder b("nightlight");
  b.Device("hallMotion", "motionSensor");
  b.Device("meter", "illuminanceSensor");
  b.Device("lamp", "smartSwitch");
  b.App("Smart Nightlight")
      .Devices("motion1", {"hallMotion"})
      .Devices("luminance1", {"meter"})
      .Devices("lights", {"lamp"})
      .Number("darkPoint", 100);
  Scenario s(b.Build(), {"Smart Nightlight"});

  // Bright (initial reading 300 lux): motion does nothing.
  s.Fire("hallMotion", "motion", "active");
  EXPECT_EQ(s.Attr("lamp", "switch"), "off");
  // Dark: motion turns the lamp on.
  s.Fire("hallMotion", "motion", "inactive");
  s.Fire("meter", "illuminance", "10");
  s.Fire("hallMotion", "motion", "active");
  EXPECT_EQ(s.Attr("lamp", "switch"), "on");
  // Quiet + timer: off again.
  s.Fire("hallMotion", "motion", "inactive");
  s.Tick();
  EXPECT_EQ(s.Attr("lamp", "switch"), "off");
}

TEST(ScenarioTest, ColorAlertSetsAndClears) {
  config::DeploymentBuilder b("color");
  b.Device("leak1", "waterLeakSensor");
  b.Device("bulb", "colorBulb");
  b.App("Color Alert")
      .Devices("leak1", {"leak1"})
      .Devices("bulb", {"bulb"});
  Scenario s(b.Build(), {"Color Alert"});

  s.Fire("leak1", "water", "wet");
  EXPECT_EQ(s.Attr("bulb", "switch"), "on");
  EXPECT_EQ(s.Attr("bulb", "color"), "red");
  s.Fire("leak1", "water", "dry");
  EXPECT_EQ(s.Attr("bulb", "color"), "white");
}

TEST(ScenarioTest, GoodNightChainEntersNightMode) {
  // A cross-app chain (Fig. 8a's tail): Let There Be Dark! turns the
  // lamp on when the door closes and off when it opens; Good Night sees
  // the last light go out and flips the mode to Night.
  config::DeploymentBuilder b("night");
  b.Device("frontDoor", "contactSensor");
  b.Device("lamp", "smartSwitch");
  b.App("Let There Be Dark!")
      .Devices("contact1", {"frontDoor"})
      .Devices("switches", {"lamp"});
  b.App("Good Night")
      .Devices("switches", {"lamp"})
      .Text("sleepMode", "Night")
      .Text("startTime", "22:00");
  Scenario s(b.Build(), {"Let There Be Dark!", "Good Night"});

  // Door opens: lamp was already off — no switch event, mode unchanged.
  s.Fire("frontDoor", "contact", "open");
  EXPECT_EQ(s.state().mode, 0);

  // Door closes: lamp on.  Door opens again: lamp off -> Good Night
  // reacts to switch.off and enters Night mode, all within the cascade.
  s.Fire("frontDoor", "contact", "closed");
  EXPECT_EQ(s.Attr("lamp", "switch"), "on");
  EXPECT_EQ(s.state().mode, 0);
  s.Fire("frontDoor", "contact", "open");
  EXPECT_EQ(s.Attr("lamp", "switch"), "off");
  EXPECT_EQ(s.state().mode, 2);  // Night
}

}  // namespace
}  // namespace iotsan::model
