#include <gtest/gtest.h>

#include "dsl/parser.hpp"
#include "dsl/printer.hpp"
#include "util/error.hpp"

namespace iotsan::dsl {
namespace {

// ---- Expressions ----------------------------------------------------------

std::string Parsed(std::string_view source) {
  return PrintExpr(*ParseExpression(source));
}

TEST(ExprParserTest, Precedence) {
  EXPECT_EQ(Parsed("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Parsed("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(Parsed("a || b && c"), "(a || (b && c))");
  EXPECT_EQ(Parsed("a == b || c == d"), "((a == b) || (c == d))");
  EXPECT_EQ(Parsed("1 < 2 == true"), "((1 < 2) == true)");
  EXPECT_EQ(Parsed("-a + b"), "(-a + b)");
  EXPECT_EQ(Parsed("!a && b"), "(!a && b)");
}

TEST(ExprParserTest, Associativity) {
  EXPECT_EQ(Parsed("1 - 2 - 3"), "((1 - 2) - 3)");
  EXPECT_EQ(Parsed("8 / 4 / 2"), "((8 / 4) / 2)");
}

TEST(ExprParserTest, TernaryAndElvis) {
  EXPECT_EQ(Parsed("a ? b : c"), "(a ? b : c)");
  EXPECT_EQ(Parsed("a ?: c"), "(a ?: c)");
  EXPECT_EQ(Parsed("a ? b : c ? d : e"), "(a ? b : (c ? d : e))");
}

TEST(ExprParserTest, MemberIndexCall) {
  EXPECT_EQ(Parsed("a.b.c"), "a.b.c");
  EXPECT_EQ(Parsed("a[1]"), "a[1]");
  EXPECT_EQ(Parsed("f(1, 2)"), "f(1, 2)");
  EXPECT_EQ(Parsed("a.f(x)"), "a.f(x)");
  EXPECT_EQ(Parsed("a?.b"), "a?.b");
  EXPECT_EQ(Parsed("evt.device.off()"), "evt.device.off()");
}

TEST(ExprParserTest, NamedArguments) {
  EXPECT_EQ(Parsed("sendEvent(name: \"smoke\", value: \"detected\")"),
            "sendEvent(name: \"smoke\", value: \"detected\")");
}

TEST(ExprParserTest, ListAndMapLiterals) {
  EXPECT_EQ(Parsed("[1, 2, 3]"), "[1, 2, 3]");
  EXPECT_EQ(Parsed("[]"), "[]");
  EXPECT_EQ(Parsed("[a: 1, b: 2]"), "[a: 1, b: 2]");
  EXPECT_EQ(Parsed("[:]"), "[:]");
  EXPECT_EQ(Parsed("[\"x\", y]"), "[\"x\", y]");
}

TEST(ExprParserTest, Closures) {
  ExprPtr e = ParseExpression("list.findAll { it.currentSwitch == \"on\" }");
  ASSERT_EQ(e->kind, ExprKind::kCall);
  EXPECT_EQ(e->text, "findAll");
  ASSERT_EQ(e->items.size(), 1u);
  EXPECT_EQ(e->items[0]->kind, ExprKind::kClosure);
  EXPECT_TRUE(e->items[0]->params.empty());  // implicit `it`
}

TEST(ExprParserTest, ClosureWithExplicitParams) {
  ExprPtr e = ParseExpression("list.collect { a, b -> a }");
  ASSERT_EQ(e->items.size(), 1u);
  EXPECT_EQ(e->items[0]->params,
            (std::vector<std::string>{"a", "b"}));
}

TEST(ExprParserTest, InOperator) {
  EXPECT_EQ(Parsed("x in [1, 2]"), "(x in [1, 2])");
}

TEST(ExprParserTest, MultiLineContinuation) {
  // Non-statement-starting operators continue across newlines.
  EXPECT_EQ(Parsed("a &&\n b"), "(a && b)");
  EXPECT_EQ(Parsed("a ==\n b"), "(a == b)");
}

TEST(ExprParserTest, RejectsMalformed) {
  EXPECT_THROW(ParseExpression("1 +"), ParseError);
  EXPECT_THROW(ParseExpression("(1"), ParseError);
  EXPECT_THROW(ParseExpression("a b"), ParseError);
  EXPECT_THROW(ParseExpression("f(1,"), ParseError);
  EXPECT_THROW(ParseExpression("[1, 2"), ParseError);
  EXPECT_THROW(ParseExpression("a ? b"), ParseError);
}

// ---- Apps -------------------------------------------------------------------

constexpr const char* kMinimalApp = R"APP(
definition(name: "Test App", namespace: "test", author: "t")

preferences {
    section("Devices") {
        input "sw", "capability.switch", title: "Switch"
        input "motion", "capability.motionSensor", required: false
        input "things", "capability.contactSensor", multiple: true
        input "level", "number", title: "Level"
        input "choice", "enum", options: ["a", "b"]
    }
}

def installed() {
    subscribe(sw, "switch.on", onHandler)
}

def onHandler(evt) {
    if (evt.value == "on") {
        sw.off()
    } else {
        log.debug "ignored"
    }
}
)APP";

TEST(AppParserTest, DefinitionMetadata) {
  App app = ParseApp(kMinimalApp);
  EXPECT_EQ(app.name, "Test App");
  EXPECT_EQ(app.namespace_, "test");
  EXPECT_EQ(app.author, "t");
}

TEST(AppParserTest, InputsParsed) {
  App app = ParseApp(kMinimalApp);
  ASSERT_EQ(app.inputs.size(), 5u);
  EXPECT_EQ(app.inputs[0].name, "sw");
  EXPECT_EQ(app.inputs[0].type, "capability.switch");
  EXPECT_EQ(app.inputs[0].title, "Switch");
  EXPECT_TRUE(app.inputs[0].required);
  EXPECT_FALSE(app.inputs[0].multiple);
  EXPECT_FALSE(app.inputs[1].required);
  EXPECT_TRUE(app.inputs[2].multiple);
  EXPECT_EQ(app.inputs[4].options, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(app.inputs[0].section, "Devices");
}

TEST(AppParserTest, MethodsParsed) {
  App app = ParseApp(kMinimalApp);
  ASSERT_EQ(app.methods.size(), 2u);
  EXPECT_EQ(app.methods[0].name, "installed");
  EXPECT_TRUE(app.methods[0].params.empty());
  EXPECT_EQ(app.methods[1].name, "onHandler");
  EXPECT_EQ(app.methods[1].params, (std::vector<std::string>{"evt"}));
  EXPECT_NE(app.FindMethod("onHandler"), nullptr);
  EXPECT_EQ(app.FindMethod("nope"), nullptr);
}

TEST(AppParserTest, CommandCallSyntax) {
  // Groovy's paren-free command call.
  App app = ParseApp(R"APP(
definition(name: "C", namespace: "t")
def installed() {
    subscribe sw, "switch", handler
}
def handler(evt) { }
)APP");
  const Stmt& stmt = *app.methods[0].body[0];
  ASSERT_EQ(stmt.kind, StmtKind::kExpr);
  EXPECT_EQ(stmt.expr->kind, ExprKind::kCall);
  EXPECT_EQ(stmt.expr->text, "subscribe");
  EXPECT_EQ(stmt.expr->items.size(), 3u);
}

TEST(AppParserTest, StatementsRoundTripThroughPrinter) {
  App app = ParseApp(kMinimalApp);
  // Printing and reparsing must preserve the structure.
  App reparsed = ParseApp(PrintApp(app));
  EXPECT_EQ(reparsed.name, app.name);
  EXPECT_EQ(reparsed.inputs.size(), app.inputs.size());
  EXPECT_EQ(reparsed.methods.size(), app.methods.size());
  EXPECT_EQ(PrintApp(reparsed), PrintApp(app));
}

TEST(AppParserTest, ControlFlowStatements) {
  App app = ParseApp(R"APP(
definition(name: "CF", namespace: "t")
def run() {
    def total = 0
    for (x in [1, 2, 3]) {
        total = total + x
    }
    while (total > 10) {
        total = total - 1
    }
    if (total == 10) {
        return total
    } else if (total > 5) {
        return 5
    }
    return 0
}
)APP");
  const auto& body = app.methods[0].body;
  ASSERT_EQ(body.size(), 5u);
  EXPECT_EQ(body[0]->kind, StmtKind::kVarDecl);
  EXPECT_EQ(body[1]->kind, StmtKind::kForIn);
  EXPECT_EQ(body[2]->kind, StmtKind::kWhile);
  EXPECT_EQ(body[3]->kind, StmtKind::kIf);
  ASSERT_EQ(body[3]->else_body.size(), 1u);
  EXPECT_EQ(body[3]->else_body[0]->kind, StmtKind::kIf);  // else-if chain
  EXPECT_EQ(body[4]->kind, StmtKind::kReturn);
}

TEST(AppParserTest, MissingDefinitionRejected) {
  EXPECT_THROW(ParseApp("def foo() { }"), SemanticError);
  EXPECT_THROW(ParseApp("definition(namespace: \"x\")"), SemanticError);
}

TEST(AppParserTest, SyntaxErrorsRejected) {
  EXPECT_THROW(ParseApp("definition(name: \"X\")\ndef f( {"), ParseError);
  EXPECT_THROW(ParseApp("definition(name: \"X\")\npreferences { junk }"),
               ParseError);
  EXPECT_THROW(
      ParseApp("definition(name: \"X\")\ndef f() { if true { } }"),
      ParseError);
}

TEST(AppParserTest, PageBlocksFlattened) {
  App app = ParseApp(R"APP(
definition(name: "Paged", namespace: "t")
preferences {
    page(name: "p1", title: "First") {
        section("S") {
            input "a", "number"
        }
    }
}
)APP");
  ASSERT_EQ(app.inputs.size(), 1u);
  EXPECT_EQ(app.inputs[0].name, "a");
}

TEST(AppParserTest, CosmeticSectionElementsIgnored) {
  App app = ParseApp(R"APP(
definition(name: "Cosmetic", namespace: "t")
preferences {
    section("S") {
        paragraph "Some explanation text"
        input "a", "number"
    }
}
)APP");
  ASSERT_EQ(app.inputs.size(), 1u);
}

TEST(AppParserTest, CloneProducesIdenticalPrint) {
  App app = ParseApp(kMinimalApp);
  for (const MethodDecl& m : app.methods) {
    for (const StmtPtr& s : m.body) {
      StmtPtr clone = CloneStmt(*s);
      EXPECT_EQ(PrintStmt(*clone), PrintStmt(*s));
    }
  }
}

}  // namespace
}  // namespace iotsan::dsl
