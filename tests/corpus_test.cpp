// Corpus integrity: every bundled app must parse, analyze cleanly, and
// carry the structure its kind promises (paper §10.1's app sets).
#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "corpus/corpus.hpp"
#include "dsl/parser.hpp"
#include "dsl/type_infer.hpp"
#include "ir/analyzer.hpp"

namespace iotsan::corpus {
namespace {

TEST(CorpusTest, Counts) {
  EXPECT_GE(MarketApps().size(), 45u);
  EXPECT_EQ(MaliciousApps().size(), 9u);   // ContexIoT-relevant apps
  EXPECT_EQ(UnsupportedApps().size(), 4u); // dynamic-discovery apps
  EXPECT_EQ(AllApps().size(),
            MarketApps().size() + MaliciousApps().size() +
                UnsupportedApps().size());
}

TEST(CorpusTest, PaperNamedAppsPresent) {
  for (const char* name :
       {"Virtual Thermostat", "Brighten Dark Places", "Let There Be Dark!",
        "Auto Mode Change", "Unlock Door", "Big Turn On", "Good Night",
        "Light Follows Me", "Light Off When Close", "Make It So",
        "Darken Behind Me", "Energy Saver", "Midnight Camera",
        "Auto Camera", "Auto Camera 2", "Alarm Manager"}) {
    EXPECT_NE(FindApp(name), nullptr) << name;
  }
  EXPECT_EQ(FindApp("No Such App"), nullptr);
}

TEST(CorpusTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const CorpusApp& app : AllApps()) {
    EXPECT_TRUE(names.insert(app.name).second) << app.name;
  }
}

TEST(CorpusTest, VariantsRenameOnlyTheDefinition) {
  const CorpusApp* base = FindApp("Light Follows Me");
  ASSERT_NE(base, nullptr);
  std::string variant = MakeVariant(*base, "bedroom");
  dsl::App app = dsl::ParseApp(variant);
  EXPECT_EQ(app.name, "Light Follows Me (bedroom)");
  // Same inputs and methods as the base.
  dsl::App original = dsl::ParseApp(base->source);
  EXPECT_EQ(app.inputs.size(), original.inputs.size());
  EXPECT_EQ(app.methods.size(), original.methods.size());
}

TEST(CorpusTest, UnsupportedAppsUseDynamicDiscovery) {
  for (const CorpusApp* app : UnsupportedApps()) {
    ir::AnalyzedApp analyzed = ir::AnalyzeSource(app->source, app->name);
    EXPECT_TRUE(analyzed.dynamic_device_discovery) << app->name;
  }
}

TEST(CorpusTest, VirtualThermostatMatchesPaperFig1) {
  // Fig. 1's preferences: sensor, outlets (multiple), setpoint, optional
  // motion/minutes/emergencySetpoint, and the heat/cool enum.
  dsl::App app = dsl::ParseApp(FindApp("Virtual Thermostat")->source);
  ASSERT_EQ(app.inputs.size(), 7u);
  EXPECT_EQ(app.inputs[0].name, "sensor");
  EXPECT_EQ(app.inputs[0].type, "capability.temperatureMeasurement");
  EXPECT_EQ(app.inputs[1].name, "outlets");
  EXPECT_TRUE(app.inputs[1].multiple);
  EXPECT_EQ(app.inputs[2].name, "setpoint");
  EXPECT_FALSE(app.inputs[3].required);  // motion
  EXPECT_FALSE(app.inputs[4].required);  // minutes
  EXPECT_FALSE(app.inputs[5].required);  // emergencySetpoint
  EXPECT_EQ(app.inputs[6].options,
            (std::vector<std::string>{"heat", "cool"}));
}

/// Parameterized sweep: every corpus app parses, type-checks without
/// heterogeneous-collection problems, and (for supported apps) yields at
/// least one subscription or schedule.
class CorpusAppTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusAppTest, ParsesAndAnalyzes) {
  const CorpusApp* app = FindApp(GetParam());
  ASSERT_NE(app, nullptr);
  dsl::App parsed = dsl::ParseApp(app->source, app->name);
  EXPECT_EQ(parsed.name, app->name) << "definition name mismatch";
  EXPECT_FALSE(parsed.methods.empty());

  ir::AnalyzedApp analyzed = ir::AnalyzeApp(std::move(parsed));
  if (app->kind != AppKind::kUnsupported) {
    // Supported apps must analyze without diagnostics; the unsupported
    // ones legitimately flag their discovery APIs as unknown.
    for (const std::string& problem : analyzed.problems) {
      ADD_FAILURE() << app->name << ": " << problem;
    }
    EXPECT_TRUE(!analyzed.subscriptions.empty() ||
                !analyzed.schedules.empty())
        << app->name << " neither subscribes nor schedules";
    // Every subscription handler must exist and have >= 1 handler vertex.
    EXPECT_FALSE(analyzed.handlers.empty());
  }
}

std::vector<std::string> AllAppNames() {
  std::vector<std::string> names;
  for (const CorpusApp& app : AllApps()) names.push_back(app.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllApps, CorpusAppTest,
                         ::testing::ValuesIn(AllAppNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace iotsan::corpus
