// Sanitizer facade tests: source resolution, user-defined properties,
// multiple installs, per-set reporting, and model options plumbing.
#include <gtest/gtest.h>

#include <algorithm>

#include "config/builder.hpp"
#include "core/sanitizer.hpp"
#include "util/error.hpp"

namespace iotsan::core {
namespace {

TEST(SanitizerTest, UnknownAppSourceIsRejectedNotFatal) {
  config::DeploymentBuilder b("h");
  b.Device("sw", "smartSwitch");
  b.App("Totally Unknown App").Devices("x", {"sw"});
  Sanitizer sanitizer(b.Build());
  SanitizerReport report = sanitizer.Check();
  ASSERT_EQ(report.rejected_apps.size(), 1u);
  EXPECT_NE(report.rejected_apps[0].find("no source"), std::string::npos);
}

TEST(SanitizerTest, AddAppSourceOverridesCorpus) {
  config::DeploymentBuilder b("h");
  b.Device("sw", "smartSwitch", {"light"});
  b.Device("m1", "motionSensor");
  b.App("My Custom App").Devices("m1", {"m1"}).Devices("sw", {"sw"});
  Sanitizer sanitizer(b.Build());
  sanitizer.AddAppSource("My Custom App", R"(
definition(name: "My Custom App", namespace: "user")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "sw", "capability.switch"
    }
}
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { sw.on() }
)");
  SanitizerReport report = sanitizer.Check();
  EXPECT_TRUE(report.rejected_apps.empty());
  EXPECT_GT(report.states_explored, 0u);
}

TEST(SanitizerTest, UserDefinedProperties) {
  config::DeploymentBuilder b("h");
  b.Device("m1", "motionSensor", {"watchedMotion"});
  b.Device("sw", "smartSwitch", {"watchedLight"});
  b.App("Brighten My Path").Devices("motion1", {"m1"}).Devices("switches",
                                                               {"sw"});
  Sanitizer sanitizer(b.Build());
  SanitizerOptions options;
  options.check.max_events = 2;
  options.extra_properties.push_back(props::MakeInvariant(
      "U1", "User", "The watched light is never on",
      R"(!(any("watchedLight", "switch") == "on"))"));
  SanitizerReport report = sanitizer.Check(options);
  EXPECT_TRUE(report.HasViolation("U1"));
}

TEST(SanitizerTest, SameAppInstalledTwice) {
  config::DeploymentBuilder b("h");
  b.Device("m1", "motionSensor");
  b.Device("m2", "motionSensor");
  b.Device("sw1", "smartSwitch", {"light"});
  b.Device("sw2", "smartSwitch", {"light"});
  b.App("Brighten My Path", "hall")
      .Devices("motion1", {"m1"})
      .Devices("switches", {"sw1"});
  b.App("Brighten My Path", "garage")
      .Devices("motion1", {"m2"})
      .Devices("switches", {"sw2"});
  Sanitizer sanitizer(b.Build());
  SanitizerOptions options;
  options.check.max_events = 1;
  SanitizerReport report = sanitizer.Check(options);
  EXPECT_TRUE(report.rejected_apps.empty());
  EXPECT_GE(report.related_set_count, 2);
}

TEST(SanitizerTest, PerSetViolationsKeepDuplicates) {
  // The same property found in several related sets appears once in
  // `violations` (merged) but once per set in `per_set_violations`.
  config::DeploymentBuilder b("h");
  b.Device("c1", "contactSensor", {"frontDoorContact"});
  b.Device("lightMeter", "illuminanceSensor");
  b.Device("sw", "smartSwitch", {"light"});
  b.App("Brighten Dark Places")
      .Devices("contact1", {"c1"})
      .Devices("luminance1", {"lightMeter"})
      .Devices("switches", {"sw"});
  b.App("Let There Be Dark!")
      .Devices("contact1", {"c1"})
      .Devices("switches", {"sw"});
  Sanitizer sanitizer(b.Build());
  SanitizerOptions options;
  options.check.max_events = 2;
  SanitizerReport report = sanitizer.Check(options);
  int merged = 0;
  for (const checker::Violation& v : report.violations) {
    if (v.property_id == "P39") ++merged;
  }
  EXPECT_EQ(merged, 1);
  EXPECT_GE(report.per_set_violations.size(), report.violations.size());
}

TEST(SanitizerTest, ScaleStatsPopulated) {
  config::DeploymentBuilder b("h");
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("Auto Mode Change")
      .Devices("people", {"p1"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"lock1"});
  Sanitizer sanitizer(b.Build());
  SanitizerReport report = sanitizer.Check();
  EXPECT_EQ(report.scale.original_size, 3);  // 3 handlers
  EXPECT_GE(report.scale.new_size, 1);
  EXPECT_GE(report.related_set_count, 1);
}

TEST(SanitizerTest, BindingErrorsSurfaceAsConfigError) {
  config::DeploymentBuilder b("h");
  b.Device("lock1", "smartLock");
  // Unlock Door's lock1 input requires capability.lock; bind a switch.
  b.Device("sw", "smartSwitch");
  b.App("Unlock Door").Devices("lock1", {"sw"});
  Sanitizer sanitizer(b.Build());
  EXPECT_THROW(sanitizer.Check(), ConfigError);
}

TEST(SanitizerTest, MissingRequiredInputThrows) {
  config::DeploymentBuilder b("h");
  b.Device("lock1", "smartLock");
  b.App("Unlock Door");  // lock1 input unbound
  Sanitizer sanitizer(b.Build());
  EXPECT_THROW(sanitizer.Check(), ConfigError);
}

TEST(SanitizerTest, ViolatedPropertyIdsSorted) {
  config::DeploymentBuilder b("h");
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("Auto Mode Change")
      .Devices("people", {"p1"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"lock1"});
  Sanitizer sanitizer(b.Build());
  SanitizerOptions options;
  options.check.max_events = 2;
  SanitizerReport report = sanitizer.Check(options);
  auto ids = report.ViolatedPropertyIds();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_FALSE(ids.empty());
}

TEST(SanitizerTest, ParallelJobsMatchesSerial) {
  // Two independent related sets — the conflicting light pair and the
  // presence/lock chain — so the parallel run fans both the groups and
  // each group's root branches across the pool.  Every field of the
  // merged report must match the serial run exactly.
  config::DeploymentBuilder b("h");
  b.Device("c1", "contactSensor", {"frontDoorContact"});
  b.Device("lightMeter", "illuminanceSensor");
  b.Device("sw", "smartSwitch", {"light"});
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("Brighten Dark Places")
      .Devices("contact1", {"c1"})
      .Devices("luminance1", {"lightMeter"})
      .Devices("switches", {"sw"});
  b.App("Let There Be Dark!")
      .Devices("contact1", {"c1"})
      .Devices("switches", {"sw"});
  b.App("Auto Mode Change")
      .Devices("people", {"p1"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"lock1"});
  config::Deployment deployment = b.Build();

  SanitizerOptions serial_options;
  serial_options.check.max_events = 2;
  SanitizerOptions parallel_options = serial_options;
  parallel_options.check.jobs = 4;
  SanitizerReport serial = Sanitizer(deployment).Check(serial_options);
  SanitizerReport parallel = Sanitizer(deployment).Check(parallel_options);

  EXPECT_GT(serial.related_set_count, 1);
  EXPECT_EQ(serial.ViolatedPropertyIds(), parallel.ViolatedPropertyIds());
  EXPECT_EQ(serial.states_explored, parallel.states_explored);
  EXPECT_EQ(serial.states_matched, parallel.states_matched);
  EXPECT_EQ(serial.transitions, parallel.transitions);
  EXPECT_EQ(serial.cascade_drains, parallel.cascade_drains);
  EXPECT_EQ(serial.completed, parallel.completed);
  EXPECT_EQ(serial.depth_histogram, parallel.depth_histogram);
  ASSERT_EQ(serial.violations.size(), parallel.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].occurrences,
              parallel.violations[i].occurrences);
    EXPECT_EQ(checker::FormatViolation(serial.violations[i]),
              checker::FormatViolation(parallel.violations[i]));
  }
  ASSERT_EQ(serial.per_set_violations.size(),
            parallel.per_set_violations.size());
  for (std::size_t i = 0; i < serial.per_set_violations.size(); ++i) {
    EXPECT_EQ(checker::FormatViolation(serial.per_set_violations[i]),
              checker::FormatViolation(parallel.per_set_violations[i]));
  }
}

}  // namespace
}  // namespace iotsan::core
