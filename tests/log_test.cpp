// Structured-log tests: level parsing and thresholds, the text and
// JSONL line formats, escaping, and the one-intact-line-per-message
// guarantee under concurrent loggers (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/log.hpp"

namespace iotsan::util {
namespace {

/// Redirects the log sink to a tmpfile for the test's duration and
/// restores the process-global defaults afterwards, so test order
/// cannot leak state.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stream_ = std::tmpfile();
    ASSERT_NE(stream_, nullptr);
    SetLogStream(stream_);
    SetLogLevel(LogLevel::kDebug);
    SetLogJson(false);
  }

  void TearDown() override {
    SetLogStream(nullptr);
    SetLogLevel(LogLevel::kWarn);
    SetLogJson(false);
    std::fclose(stream_);
  }

  /// Everything written so far, as one string.
  std::string Captured() {
    std::fflush(stream_);
    std::rewind(stream_);
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), stream_)) > 0) {
      out.append(buf, n);
    }
    return out;
  }

  std::vector<std::string> CapturedLines() {
    std::vector<std::string> lines;
    std::istringstream in(Captured());
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  std::FILE* stream_ = nullptr;
};

TEST(LogLevelTest, ParseAcceptsKnownNamesOnly) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", level));
  EXPECT_FALSE(ParseLogLevel("", level));
  EXPECT_FALSE(ParseLogLevel("WARN", level));
}

TEST(LogLevelTest, NamesRoundTripThroughParse) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    LogLevel parsed = LogLevel::kDebug;
    EXPECT_TRUE(ParseLogLevel(LogLevelName(level), parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST_F(LogTest, ThresholdSuppressesLowerLevels) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));

  LogDebug("test", "hidden debug");
  LogInfo("test", "hidden info");
  LogWarn("test", "visible warn");
  LogError("test", "visible error");

  const std::string text = Captured();
  EXPECT_EQ(text.find("hidden"), std::string::npos);
  EXPECT_NE(text.find("visible warn"), std::string::npos);
  EXPECT_NE(text.find("visible error"), std::string::npos);
}

TEST_F(LogTest, OffSuppressesEverything) {
  SetLogLevel(LogLevel::kOff);
  LogError("test", "even errors");
  EXPECT_TRUE(Captured().empty());
}

TEST_F(LogTest, TextLineCarriesLevelComponentMessageAndFields) {
  LogInfo("server", "request done",
          {{"request_id", "abc123"}, {"status", 200}, {"ok", true}});
  const std::vector<std::string> lines = CapturedLines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_NE(line.find(" INFO server: request done"), std::string::npos);
  EXPECT_NE(line.find("request_id=abc123"), std::string::npos);
  EXPECT_NE(line.find("status=200"), std::string::npos);
  EXPECT_NE(line.find("ok=true"), std::string::npos);
  // Timestamp prefix: ISO-8601 UTC with millisecond precision.
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[23], 'Z');
}

TEST_F(LogTest, TextQuotesValuesWithSeparators) {
  LogWarn("cache", "odd values",
          {{"path", "/tmp/with space"}, {"empty", ""}, {"plain", "bare"}});
  const std::string text = Captured();
  EXPECT_NE(text.find("path=\"/tmp/with space\""), std::string::npos);
  EXPECT_NE(text.find("empty=\"\""), std::string::npos);
  EXPECT_NE(text.find("plain=bare"), std::string::npos);
}

TEST_F(LogTest, JsonLinesParseAndCarryTypedFields) {
  SetLogJson(true);
  LogError("checker", "store \"full\"\n",
           {{"bytes", std::uint64_t{1} << 33},
            {"ratio", 0.5},
            {"fatal", false},
            {"note", "tab\there"}});
  const std::vector<std::string> lines = CapturedLines();
  ASSERT_EQ(lines.size(), 1u);

  const json::Value doc = json::Parse(lines[0]);
  EXPECT_EQ(doc.At("level").AsString(), "error");
  EXPECT_EQ(doc.At("component").AsString(), "checker");
  EXPECT_EQ(doc.At("msg").AsString(), "store \"full\"\n");
  EXPECT_EQ(doc.At("bytes").AsNumber(), 8589934592.0);
  EXPECT_EQ(doc.At("ratio").AsNumber(), 0.5);
  EXPECT_FALSE(doc.At("fatal").AsBool());
  EXPECT_EQ(doc.At("note").AsString(), "tab\there");
  EXPECT_TRUE(doc.Has("ts"));
}

TEST_F(LogTest, ConcurrentLoggersEmitOneIntactLinePerMessage) {
  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 200;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kMessagesPerThread; ++i) {
        LogInfo("stress", "tick",
                {{"thread", t}, {"seq", i}, {"pad", "xxxxxxxxxxxxxxxx"}});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::vector<std::string> lines = CapturedLines();
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kMessagesPerThread);
  // Every line is complete — it carries all three fields in order and
  // exactly one message, so no two writers interleaved characters.
  std::vector<std::vector<bool>> seen(kThreads,
                                      std::vector<bool>(kMessagesPerThread));
  for (const std::string& line : lines) {
    const std::size_t thread_at = line.find(" stress: tick thread=");
    ASSERT_NE(thread_at, std::string::npos) << line;
    EXPECT_EQ(line.find("tick", line.find("tick") + 1), std::string::npos)
        << "two messages on one line: " << line;
    int thread_id = -1;
    int seq = -1;
    ASSERT_EQ(std::sscanf(line.c_str() + thread_at,
                          " stress: tick thread=%d seq=%d", &thread_id, &seq),
              2)
        << line;
    ASSERT_GE(thread_id, 0);
    ASSERT_LT(thread_id, kThreads);
    ASSERT_GE(seq, 0);
    ASSERT_LT(seq, kMessagesPerThread);
    EXPECT_FALSE(seen[thread_id][seq]) << "duplicate line: " << line;
    seen[thread_id][seq] = true;
    EXPECT_NE(line.find("pad=xxxxxxxxxxxxxxxx"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace iotsan::util
