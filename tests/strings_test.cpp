#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace iotsan::strings {
namespace {

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nhello\r\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
}

TEST(TrimTest, EmptyAndAllWhitespace) {
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   \t\n  "), "");
}

TEST(TrimTest, PreservesInnerWhitespace) {
  EXPECT_EQ(Trim("  a b  c "), "a b  c");
}

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(SplitTest, SingleField) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTrimmedTest, TrimsAndDropsEmpty) {
  EXPECT_EQ(SplitTrimmed("  a , , b ,c  ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("capability.switch", "capability."));
  EXPECT_FALSE(StartsWith("cap", "capability."));
  EXPECT_TRUE(EndsWith("motion.active", ".active"));
  EXPECT_FALSE(EndsWith("active", "motion.active.x"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(ToLowerTest, MixedCase) {
  EXPECT_EQ(ToLower("MotionSensor"), "motionsensor");
  EXPECT_EQ(ToLower("ABC123xyz"), "abc123xyz");
}

TEST(ReplaceAllTest, MultipleOccurrences) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "x", "y"), "abc");
  EXPECT_EQ(ReplaceAll("abc", "", "y"), "abc");
}

TEST(ReplaceAllTest, ReplacementContainsNeedle) {
  // Must not loop on replacements that re-introduce the needle.
  EXPECT_EQ(ReplaceAll("aa", "a", "aa"), "aaaa");
}

TEST(IsIdentifierTest, Accepts) {
  EXPECT_TRUE(IsIdentifier("foo"));
  EXPECT_TRUE(IsIdentifier("_bar9"));
  EXPECT_TRUE(IsIdentifier("CamelCase"));
}

TEST(IsIdentifierTest, Rejects) {
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("9lives"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier("a b"));
}

TEST(FormatNumberTest, IntegersHaveNoDecimalPoint) {
  EXPECT_EQ(FormatNumber(75), "75");
  EXPECT_EQ(FormatNumber(-3), "-3");
  EXPECT_EQ(FormatNumber(0), "0");
}

TEST(FormatNumberTest, Decimals) {
  EXPECT_EQ(FormatNumber(2.5), "2.5");
  EXPECT_EQ(FormatNumber(-0.25), "-0.25");
}

TEST(PadTest, RightAndLeft) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace iotsan::strings
