// Model-generator tests: binding resolution, subscription resolution,
// event-space construction, and property selection (paper §8).
#include <gtest/gtest.h>

#include "config/builder.hpp"
#include "ir/analyzer.hpp"
#include "model/system_model.hpp"
#include "util/error.hpp"

namespace iotsan::model {
namespace {

constexpr const char* kApp = R"(
definition(name: "M", namespace: "t")
preferences {
    section("S") {
        input "sensors", "capability.motionSensor", multiple: true
        input "sw", "capability.switch"
        input "threshold", "number"
        input "mode1", "mode"
        input "note", "text", required: false
        input "extra", "capability.contactSensor", required: false
    }
}
def installed() {
    subscribe(sensors, "motion.active", h)
    subscribe(location, "mode", onMode)
    subscribe(app, touched)
}
def h(evt) { sw.on() }
def onMode(evt) { }
def touched(evt) { }
)";

SystemModel Build(const ModelOptions& options = {}) {
  config::DeploymentBuilder b("m home");
  b.Device("m1", "motionSensor");
  b.Device("m2", "motionSensor");
  b.Device("sw1", "smartSwitch", {"light"});
  b.App("M")
      .Devices("sensors", {"m1", "m2"})
      .Devices("sw", {"sw1"})
      .Number("threshold", 42)
      .Text("mode1", "Away");
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kApp, "M"));
  return SystemModel(b.Build(), std::move(apps), options);
}

TEST(SystemModelTest, BindingsResolved) {
  SystemModel model = Build();
  const InstalledApp& app = model.apps()[0];
  EXPECT_TRUE(app.bindings.at("sensors").is_list());
  EXPECT_EQ(app.bindings.at("sensors").AsList().size(), 2u);
  EXPECT_TRUE(app.bindings.at("sw").is_device());
  EXPECT_DOUBLE_EQ(app.bindings.at("threshold").AsNumber(), 42);
  EXPECT_EQ(app.bindings.at("mode1").AsString(), "Away");
  // Unbound optional inputs bind to null.
  EXPECT_TRUE(app.bindings.at("note").is_null());
  EXPECT_TRUE(app.bindings.at("extra").is_null());
  EXPECT_TRUE(app.touchable);
}

TEST(SystemModelTest, SubscriptionsResolvedPerDevice) {
  SystemModel model = Build();
  // motion.active on m1 and m2, one location-mode, one app-touch.
  int device_subs = 0, mode_subs = 0, touch_subs = 0;
  for (const ResolvedSubscription& sub : model.subscriptions()) {
    switch (sub.scope) {
      case ir::EventScope::kDevice: ++device_subs; break;
      case ir::EventScope::kLocationMode: ++mode_subs; break;
      case ir::EventScope::kAppTouch: ++touch_subs; break;
      default: break;
    }
  }
  EXPECT_EQ(device_subs, 2);
  EXPECT_EQ(mode_subs, 1);
  EXPECT_EQ(touch_subs, 1);
}

TEST(SystemModelTest, SubscribersMatchEvents) {
  SystemModel model = Build();
  devices::Event active;
  active.source = devices::EventSource::kDevice;
  active.device = model.DeviceIndex("m1");
  active.attribute = model.devices()[active.device].AttributeIndex("motion");
  active.value = 1;  // active
  EXPECT_EQ(model.Subscribers(active).size(), 1u);
  // The value filter must hold: motion/inactive has no subscriber.
  active.value = 0;
  EXPECT_TRUE(model.Subscribers(active).empty());
  // Events on unobserved attributes (battery) have no subscribers.
  devices::Event battery = active;
  battery.attribute = model.devices()[active.device].AttributeIndex("battery");
  EXPECT_TRUE(model.Subscribers(battery).empty());
}

TEST(SystemModelTest, ExternalEventsCoverObservedAttributesOnly) {
  SystemModel model = Build();
  int sensor_specs = 0, touch_specs = 0;
  for (const ExternalEventSpec& spec : model.external_events()) {
    if (spec.kind == ExternalEventSpec::Kind::kSensor) {
      ++sensor_specs;
      const devices::Device& device = model.devices()[spec.device];
      EXPECT_EQ(device.attributes()[spec.attribute]->name, "motion");
    }
    if (spec.kind == ExternalEventSpec::Kind::kAppTouch) ++touch_specs;
  }
  EXPECT_EQ(sensor_specs, 2);  // m1.motion, m2.motion — never battery
  EXPECT_EQ(touch_specs, 1);
}

TEST(SystemModelTest, AllSensorEventsOptionWidensTheSpace) {
  ModelOptions options;
  options.all_sensor_events = true;
  SystemModel model = Build(options);
  int sensor_specs = 0;
  for (const ExternalEventSpec& spec : model.external_events()) {
    if (spec.kind == ExternalEventSpec::Kind::kSensor) ++sensor_specs;
  }
  // motion + battery on both motion sensors = 4 sensor attributes.
  EXPECT_EQ(sensor_specs, 4);
}

TEST(SystemModelTest, PropertySelectionByRoles) {
  SystemModel model = Build();
  // The deployment has a light but no lock/presence/...; P06 (universal
  // presence) must be inactive, the light-related P35/P37 active, and
  // the monitors always active.
  bool p06 = false, p35 = false, p39 = false;
  for (const props::Property& p : model.active_properties()) {
    p06 = p06 || p.id == "P06";
    p35 = p35 || p.id == "P35";
    p39 = p39 || p.id == "P39";
  }
  EXPECT_FALSE(p06);
  EXPECT_TRUE(p35);
  EXPECT_TRUE(p39);
}

TEST(SystemModelTest, InitialState) {
  SystemModel model = Build();
  SystemState state = model.MakeInitialState();
  EXPECT_EQ(state.devices.size(), 3u);
  EXPECT_EQ(state.mode, 0);
  EXPECT_EQ(state.app_state.size(), 1u);
  EXPECT_TRUE(state.timers.empty());
  for (const devices::State& d : state.devices) {
    EXPECT_TRUE(d.online);
    EXPECT_EQ(d.values, d.physical);
  }
}

TEST(SystemModelTest, RejectsBadBindings) {
  // Missing required input.
  {
    config::DeploymentBuilder b("h");
    b.Device("m1", "motionSensor");
    b.App("M").Devices("sensors", {"m1"});
    std::vector<ir::AnalyzedApp> apps;
    apps.push_back(ir::AnalyzeSource(kApp, "M"));
    EXPECT_THROW(SystemModel(b.Build(), std::move(apps)), ConfigError);
  }
  // Capability mismatch.
  {
    config::DeploymentBuilder b("h");
    b.Device("m1", "motionSensor");
    b.Device("lock1", "smartLock");
    b.App("M")
        .Devices("sensors", {"m1"})
        .Devices("sw", {"lock1"})  // lock is not a switch
        .Number("threshold", 1)
        .Text("mode1", "Away");
    std::vector<ir::AnalyzedApp> apps;
    apps.push_back(ir::AnalyzeSource(kApp, "M"));
    EXPECT_THROW(SystemModel(b.Build(), std::move(apps)), ConfigError);
  }
  // Multiple devices on a single-device input.
  {
    config::DeploymentBuilder b("h");
    b.Device("m1", "motionSensor");
    b.Device("sw1", "smartSwitch");
    b.Device("sw2", "smartSwitch");
    b.App("M")
        .Devices("sensors", {"m1"})
        .Devices("sw", {"sw1", "sw2"})
        .Number("threshold", 1)
        .Text("mode1", "Away");
    std::vector<ir::AnalyzedApp> apps;
    apps.push_back(ir::AnalyzeSource(kApp, "M"));
    EXPECT_THROW(SystemModel(b.Build(), std::move(apps)), ConfigError);
  }
  // App installed without a matching source.
  {
    config::DeploymentBuilder b("h");
    b.Device("m1", "motionSensor");
    b.App("Ghost").Devices("x", {"m1"});
    std::vector<ir::AnalyzedApp> apps;
    EXPECT_THROW(SystemModel(b.Build(), std::move(apps)), ConfigError);
  }
}

// ---- State serialization -----------------------------------------------------

TEST(SystemStateTest, SerializationIsCanonical) {
  SystemModel model = Build();
  SystemState a = model.MakeInitialState();
  SystemState b = model.MakeInitialState();
  EXPECT_EQ(a.Serialize(), b.Serialize());
  EXPECT_EQ(a, b);
}

TEST(SystemStateTest, EveryComponentAffectsTheSerialization) {
  SystemModel model = Build();
  const SystemState base = model.MakeInitialState();
  const auto baseline = base.Serialize();

  SystemState s = base;
  s.devices[0].values[0] = 1;
  EXPECT_NE(s.Serialize(), baseline) << "cyber attribute ignored";

  s = base;
  s.devices[0].physical[0] = 1;
  EXPECT_NE(s.Serialize(), baseline) << "physical attribute ignored";

  s = base;
  s.devices[0].online = false;
  EXPECT_NE(s.Serialize(), baseline) << "online flag ignored";

  s = base;
  s.mode = 1;
  EXPECT_NE(s.Serialize(), baseline) << "mode ignored";

  s = base;
  s.app_state[0]["x"] = Value::Number(1);
  EXPECT_NE(s.Serialize(), baseline) << "app state ignored";

  s = base;
  s.timers.push_back({0, 0});
  EXPECT_NE(s.Serialize(), baseline) << "timers ignored";
}

TEST(SystemStateTest, AppStateSerializationIsOrderIndependent) {
  SystemModel model = Build();
  SystemState a = model.MakeInitialState();
  SystemState b = model.MakeInitialState();
  a.app_state[0]["x"] = Value::Number(1);
  a.app_state[0]["y"] = Value::String("s");
  b.app_state[0]["y"] = Value::String("s");
  b.app_state[0]["x"] = Value::Number(1);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(SystemStateTest, NonScalarAppStateRejectedAtSerialization) {
  SystemModel model = Build();
  SystemState s = model.MakeInitialState();
  s.app_state[0]["bad"] = Value::List({Value::Number(1)});
  EXPECT_THROW(s.Serialize(), Error);
}

// ---- Value semantics ----------------------------------------------------------

TEST(ValueTest, TruthinessTable) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Bool(false).Truthy());
  EXPECT_TRUE(Value::Bool(true).Truthy());
  EXPECT_FALSE(Value::Number(0).Truthy());
  EXPECT_TRUE(Value::Number(-1).Truthy());
  EXPECT_FALSE(Value::String("").Truthy());
  EXPECT_TRUE(Value::String("x").Truthy());
  EXPECT_FALSE(Value::List({}).Truthy());
  EXPECT_TRUE(Value::List({Value::Number(1)}).Truthy());
  EXPECT_FALSE(Value::Map({}).Truthy());
}

TEST(ValueTest, EqualsSemantics) {
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Number(0)));
  EXPECT_TRUE(Value::Number(2).Equals(Value::Number(2.0)));
  EXPECT_FALSE(Value::Number(2).Equals(Value::String("2")));
  EXPECT_TRUE(Value::List({Value::Number(1), Value::String("a")})
                  .Equals(Value::List({Value::Number(1), Value::String("a")})));
  EXPECT_FALSE(Value::List({Value::Number(1)})
                   .Equals(Value::List({Value::Number(2)})));
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value::Number(75).ToDisplayString(), "75");
  EXPECT_EQ(Value::Number(2.5).ToDisplayString(), "2.5");
  EXPECT_EQ(Value::String("on").ToDisplayString(), "on");
  EXPECT_EQ(Value::List({Value::Number(1), Value::Number(2)})
                .ToDisplayString(),
            "[1, 2]");
  EXPECT_EQ(Value::Null().ToDisplayString(), "null");
}

}  // namespace
}  // namespace iotsan::model
