// Violation-forensics tests: structured TraceStep records, artifact
// (de)serialization round-trips, deterministic replay, and the
// reverify-bitstate false-positive filter.
#include <gtest/gtest.h>

#include "checker/checker.hpp"
#include "config/builder.hpp"
#include "ir/analyzer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace iotsan::checker {
namespace {

constexpr const char* kUnlockApp = R"(
definition(name: "UnlockOnAway", namespace: "t")
preferences {
    section("S") {
        input "p1", "capability.presenceSensor"
        input "lock1", "capability.lock"
    }
}
def installed() {
    subscribe(p1, "presence.notpresent", handler)
}
def handler(evt) {
    lock1.unlock()
}
)";

model::SystemModel UnlockModel() {
  config::DeploymentBuilder b("home");
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("UnlockOnAway").Devices("p1", {"p1"}).Devices("lock1", {"lock1"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kUnlockApp, "UnlockOnAway"));
  return model::SystemModel(b.Build(), std::move(apps));
}

json::Value StepsJson(const std::vector<TraceStep>& steps) {
  json::Array out;
  for (const TraceStep& step : steps) out.push_back(ToJson(step));
  return json::Value(std::move(out));
}

// ---- Structured trace content ------------------------------------------------

TEST(TraceTest, StepRecordsEventCascadeAndDeltas) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  CheckResult result = checker.Run(options);

  ASSERT_TRUE(result.HasViolation("P06"));
  const Violation& v = *result.Find("P06");
  ASSERT_EQ(v.steps.size(), 1u);
  const TraceStep& step = v.steps.front();
  EXPECT_EQ(step.index, 1);
  EXPECT_EQ(step.sim_time_ms, 1000);
  EXPECT_EQ(step.kind, "sensor");
  EXPECT_EQ(step.device, "p1");
  EXPECT_EQ(step.attribute, "presence");
  EXPECT_EQ(step.value, "notpresent");
  // The cascade dispatched the app's handler and issued the unlock.
  ASSERT_FALSE(step.dispatches.empty());
  EXPECT_EQ(step.dispatches.front().app, "UnlockOnAway");
  EXPECT_EQ(step.dispatches.front().handler, "handler");
  ASSERT_FALSE(step.commands.empty());
  EXPECT_EQ(step.commands.front().device, "lock1");
  EXPECT_EQ(step.commands.front().command, "unlock");
  EXPECT_TRUE(step.commands.front().delivered);
  // Attribute deltas: the sensor flip and the lock state change.
  ASSERT_GE(step.deltas.size(), 2u);
  bool lock_changed = false;
  for (const TraceDelta& delta : step.deltas) {
    if (delta.device == "lock1" && delta.attribute == "lock") {
      lock_changed = true;
      EXPECT_EQ(delta.to, "unlocked");
    }
  }
  EXPECT_TRUE(lock_changed);
  EXPECT_GE(step.queue_peak, 1);
  EXPECT_FALSE(step.notes.empty());
  // model_apps names the checked model's app instances (for replay).
  EXPECT_EQ(v.model_apps, (std::vector<std::string>{"UnlockOnAway"}));
  EXPECT_NE(v.detail.find("assertion violated"), std::string::npos);
}

TEST(TraceTest, FlattenedTraceKeepsFig7Layout) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  CheckResult result = checker.Run(options);
  const Violation& v = *result.Find("P06");

  const std::vector<std::string> lines = v.TraceLines();
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines.front().rfind("== event 1:", 0), 0u) << lines.front();
  EXPECT_EQ(lines.back(), v.detail);
}

// ---- Determinism across stores -----------------------------------------------

TEST(TraceDeterminismTest, ExhaustiveAndBitstateProduceIdenticalTraces) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions exhaustive;
  exhaustive.max_events = 2;
  CheckOptions bitstate = exhaustive;
  bitstate.store = StoreKind::kBitstate;

  CheckResult a = checker.Run(exhaustive);
  CheckResult b = checker.Run(bitstate);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].property_id, b.violations[i].property_id);
    EXPECT_EQ(a.violations[i].steps, b.violations[i].steps);
    // Byte-identical once serialized, too.
    EXPECT_EQ(StepsJson(a.violations[i].steps).Dump(),
              StepsJson(b.violations[i].steps).Dump());
  }
}

TEST(TraceDeterminismTest, RepeatedRunsSerializeIdentically) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 2;
  CheckResult a = checker.Run(options);
  CheckResult b = checker.Run(options);
  ASSERT_FALSE(a.violations.empty());
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(StepsJson(a.violations[i].steps).Dump(),
              StepsJson(b.violations[i].steps).Dump());
  }
}

// ---- Artifact round-trip and replay ------------------------------------------

TEST(ArtifactTest, SerializeParseRoundTripIsByteStable) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  CheckResult result = checker.Run(options);
  const Violation& v = *result.Find("P06");

  ViolationArtifact artifact =
      MakeArtifact(v, options, "home", "0123456789abcdef");
  EXPECT_EQ(artifact.property_id, "P06");
  EXPECT_EQ(artifact.manifest.deployment, "home");
  EXPECT_EQ(artifact.manifest.store, "exhaustive");
  EXPECT_EQ(artifact.manifest.scheduling, "sequential");
  EXPECT_FALSE(artifact.manifest.version.empty());
  EXPECT_FALSE(artifact.manifest.compiler.empty());
  EXPECT_EQ(artifact.manifest.model_apps, v.model_apps);

  const std::string once = ToJson(artifact).Dump(2);
  ViolationArtifact parsed = ArtifactFromJson(json::Parse(once));
  const std::string twice = ToJson(parsed).Dump(2);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(parsed.depth, artifact.depth);
  EXPECT_EQ(parsed.steps, artifact.steps);
  // Without correlation the manifest omits the key entirely (the CLI
  // path), keeping pre-correlation artifacts byte-identical.
  EXPECT_TRUE(parsed.manifest.request_id.empty());
  EXPECT_EQ(once.find("request_id"), std::string::npos);
}

TEST(ArtifactTest, ManifestRequestIdRoundTrips) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  options.request_id = "req-abc.1";
  CheckResult result = checker.Run(options);
  const Violation& v = *result.Find("P06");

  const ViolationArtifact artifact =
      MakeArtifact(v, options, "home", "0123456789abcdef");
  EXPECT_EQ(artifact.manifest.request_id, "req-abc.1");
  const ViolationArtifact parsed =
      ArtifactFromJson(json::Parse(ToJson(artifact).Dump(2)));
  EXPECT_EQ(parsed.manifest.request_id, "req-abc.1");
}

TEST(ArtifactTest, ReplayReproducesParsedArtifact) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  CheckResult result = checker.Run(options);
  const Violation& v = *result.Find("P06");

  ViolationArtifact artifact = MakeArtifact(v, options, "home", "hash");
  // Full pipeline: serialize, parse, replay against a fresh model.
  ViolationArtifact parsed =
      ArtifactFromJson(json::Parse(ToJson(artifact).Dump()));
  ReplayResult replay = checker.Replay(parsed);
  EXPECT_TRUE(replay.reproduced) << replay.message;
  EXPECT_EQ(replay.property_id, "P06");
  EXPECT_EQ(replay.fired_step, v.depth);
  EXPECT_EQ(replay.expected_step, v.depth);
}

TEST(ArtifactTest, ReplayRefutesTamperedArtifact) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  CheckResult result = checker.Run(options);
  const Violation& v = *result.Find("P06");

  ViolationArtifact artifact = MakeArtifact(v, options, "home", "hash");
  // A trace that never fires the property: flip the sensor value to the
  // one that keeps everyone home.
  artifact.steps.front().value = "present";
  artifact.steps.front().description = "p1: presence/present";
  ReplayResult replay = checker.Replay(artifact);
  EXPECT_FALSE(replay.reproduced);
  EXPECT_EQ(replay.fired_step, -1);
}

TEST(ArtifactTest, ReplayRejectsUnknownCoordinates) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  CheckResult result = checker.Run(options);

  ViolationArtifact artifact =
      MakeArtifact(*result.Find("P06"), options, "home", "hash");
  artifact.steps.front().device = "nosuchdevice";
  EXPECT_THROW(checker.Replay(artifact), Error);
}

// ---- Reverify-bitstate -------------------------------------------------------

TEST(ReverifyBitstateTest, ViolationsSurviveAndAreMarkedVerified) {
  telemetry::Registry registry;
  telemetry::SetActive(&registry);
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 2;
  options.store = StoreKind::kBitstate;
  options.reverify_bitstate = true;
  CheckResult result = checker.Run(options);
  telemetry::SetActive(nullptr);

  // Bitstate omission can only hide states, never fabricate a trace: the
  // violations found must all survive the deterministic re-execution.
  ASSERT_TRUE(result.HasViolation("P06"));
  for (const Violation& v : result.violations) {
    EXPECT_TRUE(v.replay_verified) << v.property_id;
  }
  EXPECT_GE(registry.search.replays_run, result.violations.size());
  EXPECT_EQ(registry.search.replays_reproduced, registry.search.replays_run);
  EXPECT_EQ(registry.search.replays_refuted, 0u);
}

TEST(ReverifyBitstateTest, ExhaustiveRunsAreNotReverified) {
  telemetry::Registry registry;
  telemetry::SetActive(&registry);
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  options.reverify_bitstate = true;  // no-op without a bitstate store
  CheckResult result = checker.Run(options);
  telemetry::SetActive(nullptr);

  ASSERT_TRUE(result.HasViolation("P06"));
  EXPECT_FALSE(result.Find("P06")->replay_verified);
  EXPECT_EQ(registry.search.replays_run, 0u);
}

// ---- Saturation warning counter ----------------------------------------------

TEST(SaturationTest, SaturatedBitstateTicksCounterOncePerCheck) {
  telemetry::Registry registry;
  telemetry::SetActive(&registry);
  ResetSaturationWarning();
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 3;
  options.store = StoreKind::kBitstate;
  options.bitstate_bits = 16;  // tiny on purpose: saturates immediately
  CheckResult first = checker.Run(options);
  CheckResult second = checker.Run(options);
  telemetry::SetActive(nullptr);
  ResetSaturationWarning();

  ASSERT_GT(first.store_fill_ratio, 0.5);
  ASSERT_GT(second.store_fill_ratio, 0.5);
  // The counter ticks per saturated check even though the stderr warning
  // is latched after the first.
  EXPECT_EQ(registry.store.saturation_warnings, 2u);
}

}  // namespace
}  // namespace iotsan::checker
