// Hashing, bit array, and RNG tests — the primitives the BITSTATE store
// and the deterministic workload generators rest on.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/bitarray.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace iotsan {
namespace {

TEST(HashTest, Fnv1aKnownVectors) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(hash::Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(hash::Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hash::Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, BytesAndStringAgree) {
  const std::uint8_t bytes[] = {'a', 'b', 'c'};
  EXPECT_EQ(hash::Fnv1a64(std::span<const std::uint8_t>(bytes, 3)),
            hash::Fnv1a64("abc"));
}

TEST(HashTest, SplitMixIsBijectiveish) {
  // Distinct inputs must produce distinct outputs in a small sample.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(hash::SplitMix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, NthHashProducesDistinctStreams) {
  const std::uint64_t base = hash::Fnv1a64("state vector");
  std::set<std::uint64_t> seen;
  for (unsigned i = 0; i < 16; ++i) {
    seen.insert(hash::NthHash(base, i));
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(BitArrayTest, TestAndSet) {
  BitArray bits(128);
  EXPECT_FALSE(bits.Test(7));
  EXPECT_FALSE(bits.TestAndSet(7));
  EXPECT_TRUE(bits.Test(7));
  EXPECT_TRUE(bits.TestAndSet(7));
  EXPECT_EQ(bits.PopCount(), 1u);
}

TEST(BitArrayTest, IndexWrapsModuloSize) {
  BitArray bits(100);
  bits.TestAndSet(100);  // wraps to 0
  EXPECT_TRUE(bits.Test(0));
}

TEST(BitArrayTest, NonMultipleOf64Size) {
  BitArray bits(65);
  bits.TestAndSet(64);
  EXPECT_TRUE(bits.Test(64));
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.size(), 65u);
}

TEST(BitArrayTest, Reset) {
  BitArray bits(64);
  bits.TestAndSet(1);
  bits.TestAndSet(63);
  bits.Reset();
  EXPECT_EQ(bits.PopCount(), 0u);
}

TEST(BitArrayTest, ZeroSizeRejected) {
  EXPECT_THROW(BitArray(0), Error);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
  EXPECT_THROW(rng.NextBelow(0), Error);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 3000; ++i) {
    std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    ++counts[v];
  }
  EXPECT_EQ(counts.size(), 5u);  // all five values hit
  EXPECT_THROW(rng.NextInRange(3, 2), Error);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of uniform(0,1)
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

/// BITSTATE-style false-positive rate stays small while the field is
/// sparsely occupied (Holzmann's analysis, paper §2.3).
TEST(BitArrayTest, BloomFalsePositiveRateIsLowWhenSparse) {
  BitArray bits(std::size_t{1} << 16);
  constexpr unsigned kHashes = 3;
  auto insert = [&bits](std::uint64_t key) {
    bool seen = true;
    for (unsigned i = 0; i < kHashes; ++i) {
      seen &= bits.TestAndSet(hash::NthHash(key, i));
    }
    return seen;
  };
  int false_positives = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    if (insert(hash::SplitMix64(k))) ++false_positives;
  }
  EXPECT_LT(false_positives, 5);
}

}  // namespace
}  // namespace iotsan
