// Promela emitter tests: the Translator's output (paper §6/§8, Fig. 7's
// g_ST*Arr naming) must be structurally complete — mtypes, typedefs,
// globals, one inline per handler, the Algorithm-1 loop, and one LTL
// formula per active invariant.
#include <gtest/gtest.h>

#include "config/builder.hpp"
#include "ir/analyzer.hpp"
#include "model/system_model.hpp"
#include "promela/emitter.hpp"

namespace iotsan::promela {
namespace {

model::SystemModel Fig7Model() {
  config::DeploymentBuilder b("alice's home");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  const char* source = R"(
definition(name: "Unlocker", namespace: "t")
preferences {
    section("S") {
        input "p1", "capability.presenceSensor"
        input "lock1", "capability.lock"
        input "awayMode", "mode"
    }
}
def installed() {
    subscribe(p1, "presence.notpresent", left)
    subscribe(location, "mode", modeChanged)
}
def left(evt) {
    setLocationMode(awayMode)
}
def modeChanged(evt) {
    if (location.mode == awayMode) {
        lock1.unlock()
    }
}
)";
  b.App("Unlocker")
      .Devices("p1", {"alicePresence"})
      .Devices("lock1", {"doorLock"})
      .Text("awayMode", "Away");
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(source, "Unlocker"));
  return model::SystemModel(b.Build(), std::move(apps));
}

TEST(PromelaTest, StructuralCompleteness) {
  model::SystemModel model = Fig7Model();
  std::string promela = EmitPromela(model);

  // mtype covers enum values and modes.
  EXPECT_NE(promela.find("mtype = {"), std::string::npos);
  for (const char* value :
       {"present", "notpresent", "locked", "unlocked", "Home", "Away"}) {
    EXPECT_NE(promela.find(value), std::string::npos) << value;
  }
  // Typedefs + Fig. 7-style globals.
  EXPECT_NE(promela.find("typedef STPresenceSensor"), std::string::npos);
  EXPECT_NE(promela.find("typedef STSmartLock"), std::string::npos);
  EXPECT_NE(promela.find("g_STSmartLockArr[1]"), std::string::npos);
  EXPECT_NE(promela.find("mtype location_mode = Home"), std::string::npos);
  EXPECT_NE(promela.find("subNotifiers"), std::string::npos);
  // One inline per handler.
  EXPECT_NE(promela.find("inline Unlocker_left()"), std::string::npos);
  EXPECT_NE(promela.find("inline Unlocker_modeChanged()"),
            std::string::npos);
  // Algorithm-1 main loop with the event bound.
  EXPECT_NE(promela.find("#define MAX_EVENTS 3"), std::string::npos);
  EXPECT_NE(promela.find("active proctype SmartThingsMain()"),
            std::string::npos);
  EXPECT_NE(promela.find("for (event_i : 1 .. MAX_EVENTS)"),
            std::string::npos);
}

TEST(PromelaTest, HandlerBodiesTranslate) {
  std::string promela = EmitPromela(Fig7Model());
  // setLocationMode lowers to a location_mode assignment.
  EXPECT_NE(promela.find("location_mode = Away"), std::string::npos);
  // The unlock command lowers to the Fig. 7 ST_Command + field update.
  EXPECT_NE(promela.find("ST_Command.evtType = unlock"), std::string::npos);
  EXPECT_NE(promela.find(".currentLock = unlocked"), std::string::npos);
  // The mode guard becomes a Promela if/fi.
  EXPECT_NE(promela.find(":: (("), std::string::npos);
  EXPECT_NE(promela.find("fi;"), std::string::npos);
}

TEST(PromelaTest, LtlFormulasForActiveInvariants) {
  model::SystemModel model = Fig7Model();
  std::string promela = EmitPromela(model);
  int invariants = 0;
  for (const props::Property& p : model.active_properties()) {
    if (p.kind == props::PropertyKind::kInvariant) ++invariants;
  }
  ASSERT_GT(invariants, 0);
  std::size_t ltl_count = 0;
  for (std::size_t pos = promela.find("ltl p"); pos != std::string::npos;
       pos = promela.find("ltl p", pos + 1)) {
    ++ltl_count;
  }
  EXPECT_EQ(ltl_count, static_cast<std::size_t>(invariants));
  // P06's expansion references concrete device fields.
  EXPECT_NE(promela.find("ltl p06 { [] "), std::string::npos);
  EXPECT_NE(
      promela.find("g_STSmartLockArr[0].currentLock == unlocked"),
      std::string::npos);
  EXPECT_NE(
      promela.find("g_STPresenceSensorArr[0].currentPresence == notpresent"),
      std::string::npos);
}

TEST(PromelaTest, EventLoopEnumeratesSensorValues) {
  std::string promela = EmitPromela(Fig7Model());
  EXPECT_NE(promela.find(
                ":: g_STPresenceSensorArr[0].currentPresence = present"),
            std::string::npos);
  EXPECT_NE(promela.find(
                ":: g_STPresenceSensorArr[0].currentPresence = notpresent"),
            std::string::npos);
}

TEST(PromelaTest, MaxEventsOption) {
  EmitOptions options;
  options.max_events = 7;
  std::string promela = EmitPromela(Fig7Model(), options);
  EXPECT_NE(promela.find("#define MAX_EVENTS 7"), std::string::npos);
}

TEST(PromelaTest, UnsupportedConstructsDegradeToComments) {
  config::DeploymentBuilder b("h");
  b.Device("m1", "motionSensor");
  const char* source = R"(
definition(name: "Loopy", namespace: "t")
preferences { section("S") { input "m1", "capability.motionSensor" } }
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) {
    for (x in [1, 2]) {
        sendPush("x")
    }
}
)";
  b.App("Loopy").Devices("m1", {"m1"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(source, "Loopy"));
  model::SystemModel model(b.Build(), std::move(apps));
  std::string promela = EmitPromela(model);
  // Loops lower to d_step placeholders, never to silently-wrong code.
  EXPECT_NE(promela.find("d_step"), std::string::npos);
}

}  // namespace
}  // namespace iotsan::promela
