// Configuration enumeration and volunteer-simulation tests (paper §9
// phase 1/2 enumeration; §10.1 non-expert configurations).
#include <gtest/gtest.h>

#include <set>

#include "attrib/config_enum.hpp"
#include "config/builder.hpp"
#include "corpus/corpus.hpp"
#include "dsl/parser.hpp"

namespace iotsan::attrib {
namespace {

config::Deployment Home() {
  config::DeploymentBuilder b("enum home");
  b.ContactPhone("555-0100");
  b.Device("tempMeas", "temperatureSensor", {"tempSensor"});
  b.Device("heaterOutlet", "smartOutlet", {"heaterOutlet"});
  b.Device("acOutlet", "smartOutlet", {"acOutlet"});
  b.Device("livRoomMotion", "motionSensor");
  b.Device("batRoomMotion", "motionSensor");
  return b.Build();
}

dsl::App VirtualThermostat() {
  return dsl::ParseApp(corpus::FindApp("Virtual Thermostat")->source);
}

TEST(EnumerateConfigsTest, BindsAllRequiredInputs) {
  dsl::App app = VirtualThermostat();
  EnumOptions options;
  options.max_configs = 32;
  auto configs = EnumerateConfigs(app, Home(), options);
  ASSERT_FALSE(configs.empty());
  for (const config::AppConfig& cfg : configs) {
    EXPECT_EQ(cfg.app, "Virtual Thermostat");
    // Required inputs are always bound.
    EXPECT_TRUE(cfg.inputs.count("sensor"));
    EXPECT_TRUE(cfg.inputs.count("outlets"));
    EXPECT_TRUE(cfg.inputs.count("setpoint"));
    EXPECT_TRUE(cfg.inputs.count("mode"));
    // Device bindings are compatible.
    EXPECT_EQ(cfg.inputs.at("sensor").device_ids[0], "tempMeas");
  }
}

TEST(EnumerateConfigsTest, CoversTheCandidateSpace) {
  dsl::App app = VirtualThermostat();
  EnumOptions options;
  options.max_configs = 64;
  auto configs = EnumerateConfigs(app, Home(), options);

  std::set<std::string> outlet_choices;
  std::set<std::string> modes;
  std::set<double> setpoints;
  bool motion_unbound = false;
  for (const config::AppConfig& cfg : configs) {
    std::string key;
    for (const std::string& id : cfg.inputs.at("outlets").device_ids) {
      key += id + ",";
    }
    outlet_choices.insert(key);
    modes.insert(*cfg.inputs.at("mode").text);
    setpoints.insert(*cfg.inputs.at("setpoint").number);
    motion_unbound = motion_unbound || !cfg.inputs.count("motion");
  }
  // Single-device choices AND the §2.2 both-outlets misconfiguration.
  EXPECT_GE(outlet_choices.size(), 3u);
  EXPECT_EQ(modes, (std::set<std::string>{"heat", "cool"}));
  EXPECT_GE(setpoints.size(), 2u);
  EXPECT_TRUE(motion_unbound) << "optional inputs must sometimes stay unbound";
}

TEST(EnumerateConfigsTest, DeterministicAcrossCalls) {
  dsl::App app = VirtualThermostat();
  EnumOptions options;
  options.max_configs = 16;
  auto a = EnumerateConfigs(app, Home(), options);
  auto b = EnumerateConfigs(app, Home(), options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(config::DeploymentToJson([&] {
                config::Deployment d;
                d.apps.push_back(a[i]);
                return d;
              }()).Dump(),
              config::DeploymentToJson([&] {
                config::Deployment d;
                d.apps.push_back(b[i]);
                return d;
              }()).Dump());
  }
}

TEST(EnumerateConfigsTest, RespectsMaxConfigs) {
  dsl::App app = VirtualThermostat();
  EnumOptions options;
  options.max_configs = 5;
  EXPECT_EQ(EnumerateConfigs(app, Home(), options).size(), 5u);
}

TEST(EnumerateConfigsTest, UnconfigurableAppYieldsNothing) {
  dsl::App app = VirtualThermostat();
  config::DeploymentBuilder b("empty home");  // no temperature sensor
  b.Device("sw", "smartSwitch");
  EXPECT_TRUE(EnumerateConfigs(app, b.Build(), {}).empty());
}

TEST(EnumerateConfigsTest, SmallSpacesEnumerateExhaustively) {
  dsl::App app = dsl::ParseApp(R"(
definition(name: "Tiny", namespace: "t")
preferences {
    section("S") {
        input "sw", "capability.switch"
        input "flag", "bool"
    }
}
def installed() { subscribe(sw, "switch", h) }
def h(evt) { }
)");
  config::DeploymentBuilder b("h");
  b.Device("s1", "smartSwitch");
  b.Device("s2", "smartSwitch");
  // 2 devices x 2 flags = 4 total combinations.
  auto configs = EnumerateConfigs(app, b.Build(), {});
  EXPECT_EQ(configs.size(), 4u);
  std::set<std::string> distinct;
  for (const config::AppConfig& cfg : configs) {
    distinct.insert(cfg.inputs.at("sw").device_ids[0] + "/" +
                    (*cfg.inputs.at("flag").flag ? "t" : "f"));
  }
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(VolunteerConfigTest, DeterministicPerSeed) {
  dsl::App app = VirtualThermostat();
  Rng a(5);
  Rng b(5);
  config::AppConfig ca = GenerateVolunteerConfig(app, Home(), a);
  config::AppConfig cb = GenerateVolunteerConfig(app, Home(), b);
  EXPECT_EQ(config::DeploymentToJson([&] {
              config::Deployment d;
              d.apps.push_back(ca);
              return d;
            }()).Dump(),
            config::DeploymentToJson([&] {
              config::Deployment d;
              d.apps.push_back(cb);
              return d;
            }()).Dump());
}

TEST(VolunteerConfigTest, SometimesMultiBindsConfusableOutlets) {
  // The §2.2 user-study mistake must be reproducible: across many draws,
  // some volunteer binds several outlets to the `outlets` input.
  dsl::App app = VirtualThermostat();
  Rng rng(2018);
  bool saw_multi = false;
  bool saw_single = false;
  for (int i = 0; i < 40; ++i) {
    config::AppConfig cfg = GenerateVolunteerConfig(app, Home(), rng);
    const std::size_t n = cfg.inputs.at("outlets").device_ids.size();
    saw_multi = saw_multi || n > 1;
    saw_single = saw_single || n == 1;
  }
  EXPECT_TRUE(saw_multi);
  EXPECT_TRUE(saw_single);
}

TEST(VolunteerConfigTest, AlwaysBindsRequiredDeviceInputs) {
  dsl::App app = VirtualThermostat();
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    config::AppConfig cfg = GenerateVolunteerConfig(app, Home(), rng);
    EXPECT_TRUE(cfg.inputs.count("sensor"));
    EXPECT_TRUE(cfg.inputs.count("outlets"));
    EXPECT_TRUE(cfg.inputs.count("setpoint"));
  }
}

}  // namespace
}  // namespace iotsan::attrib
