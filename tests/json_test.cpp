#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/json.hpp"

namespace iotsan::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null").is_null());
  EXPECT_EQ(Parse("true").AsBool(), true);
  EXPECT_EQ(Parse("false").AsBool(), false);
  EXPECT_DOUBLE_EQ(Parse("42").AsNumber(), 42);
  EXPECT_DOUBLE_EQ(Parse("-2.5e2").AsNumber(), -250);
  EXPECT_EQ(Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Parse(R"("a\nb\t\"c\"\\")").AsString(), "a\nb\t\"c\"\\");
  EXPECT_EQ(Parse(R"("A")").AsString(), "A");
  EXPECT_EQ(Parse(R"("é")").AsString(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParseTest, Arrays) {
  Value v = Parse("[1, 2, 3]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(v.AsArray()[1].AsNumber(), 2);
  EXPECT_TRUE(Parse("[]").AsArray().empty());
}

TEST(JsonParseTest, Objects) {
  Value v = Parse(R"({"a": 1, "b": [true, null]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.At("a").AsNumber(), 1);
  EXPECT_TRUE(v.At("b").AsArray()[1].is_null());
  EXPECT_TRUE(v.Has("a"));
  EXPECT_FALSE(v.Has("c"));
}

TEST(JsonParseTest, NestedStructures) {
  Value v = Parse(R"({"devices": [{"id": "d1", "roles": ["r1", "r2"]}]})");
  EXPECT_EQ(v.At("devices").AsArray()[0].At("roles").AsArray()[1].AsString(),
            "r2");
}

TEST(JsonParseTest, LineCommentsExtension) {
  Value v = Parse("// header\n{\"a\": 1 // trailing\n}");
  EXPECT_DOUBLE_EQ(v.At("a").AsNumber(), 1);
}

TEST(JsonParseTest, TrailingCommaExtension) {
  EXPECT_EQ(Parse("[1, 2,]").AsArray().size(), 2u);
  EXPECT_EQ(Parse(R"({"a": 1,})").AsObject().size(), 1u);
}

TEST(JsonParseTest, ErrorsCarryPosition) {
  try {
    Parse("{\n  \"a\": }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParseTest, RejectsMalformed) {
  EXPECT_THROW(Parse(""), ParseError);
  EXPECT_THROW(Parse("{"), ParseError);
  EXPECT_THROW(Parse("[1 2]"), ParseError);
  EXPECT_THROW(Parse("tru"), ParseError);
  EXPECT_THROW(Parse("\"unterminated"), ParseError);
  EXPECT_THROW(Parse("1 2"), ParseError);
  EXPECT_THROW(Parse("{a: 1}"), ParseError);
}

TEST(JsonValueTest, TypeMismatchThrows) {
  EXPECT_THROW(Parse("1").AsString(), Error);
  EXPECT_THROW(Parse("\"x\"").AsNumber(), Error);
  EXPECT_THROW(Parse("[]").AsObject(), Error);
  EXPECT_THROW(Parse("{}").At("missing"), Error);
}

TEST(JsonValueTest, GettersWithDefaults) {
  Value v = Parse(R"({"name": "x", "count": 3, "flag": true})");
  EXPECT_EQ(v.GetString("name"), "x");
  EXPECT_EQ(v.GetString("other", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(v.GetNumber("count"), 3);
  EXPECT_DOUBLE_EQ(v.GetNumber("other", 7), 7);
  EXPECT_TRUE(v.GetBool("flag"));
  EXPECT_FALSE(v.GetBool("other"));
}

TEST(JsonValueTest, DeepCopySemantics) {
  Value a = Parse("[1, 2]");
  Value b = a;
  b.MutableArray().push_back(Value(3));
  EXPECT_EQ(a.AsArray().size(), 2u);
  EXPECT_EQ(b.AsArray().size(), 3u);
}

TEST(JsonValueTest, Equality) {
  EXPECT_EQ(Parse("[1, {\"a\": true}]"), Parse("[1, {\"a\": true}]"));
  EXPECT_FALSE(Parse("[1]") == Parse("[2]"));
  EXPECT_FALSE(Parse("1") == Parse("\"1\""));
}

TEST(JsonDumpTest, RoundTrip) {
  const char* docs[] = {
      "null", "true", "42", "\"hi\"", "[1,2,3]",
      R"({"a":1,"b":[true,null],"c":"x"})",
  };
  for (const char* doc : docs) {
    Value original = Parse(doc);
    EXPECT_EQ(Parse(original.Dump()), original) << doc;
  }
}

TEST(JsonDumpTest, PrettyPrinting) {
  std::string out = Parse(R"({"a":[1]})").Dump(2);
  EXPECT_NE(out.find("\n"), std::string::npos);
  EXPECT_NE(out.find("  \"a\""), std::string::npos);
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  Value v(std::string("a\nb\x01"));
  EXPECT_EQ(v.Dump(), "\"a\\nb\\u0001\"");
}

TEST(JsonDumpTest, IntegralNumbersStayIntegral) {
  EXPECT_EQ(Parse("75").Dump(), "75");
  EXPECT_EQ(Parse("-3").Dump(), "-3");
}

}  // namespace
}  // namespace iotsan::json
