// Output Analyzer tests (paper §9, §10.3): malicious apps attributed via
// phase-1 violation ratios; benign apps clean; configuration-sensitive
// apps attributed to misconfiguration with safe suggestions.
#include <gtest/gtest.h>

#include "attrib/output_analyzer.hpp"
#include "config/builder.hpp"
#include "corpus/corpus.hpp"
#include "util/error.hpp"

namespace iotsan {
namespace {

/// A reference smart home whose devices cover the corpus apps' inputs.
config::Deployment BaseHome() {
  config::DeploymentBuilder b("attribution home");
  b.ContactPhone("555-0100");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("smokeDet", "smokeDetector", {"smokeSensor", "coSensor"});
  b.Device("valve1", "waterValve", {"waterValve"});
  b.Device("siren1", "smartAlarm", {"alarmSiren"});
  b.Device("panicButton", "buttonController");
  b.Device("hallMotion", "motionSensor", {"securityMotion"});
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("heaterOutlet", "smartOutlet", {"heaterOutlet"});
  return b.Build();
}

attrib::AttributionOptions FastOptions() {
  attrib::AttributionOptions options;
  options.enumeration.max_configs = 12;
  options.check.max_events = 2;
  return options;
}

TEST(AttributionTest, SneakyDoorHelperIsMalicious) {
  attrib::AttributionResult result = attrib::AttributeCorpusApp(
      "Sneaky Door Helper", BaseHome(), FastOptions());
  EXPECT_EQ(result.verdict, attrib::Verdict::kMalicious);
  EXPECT_DOUBLE_EQ(result.phase1_ratio, 1.0);
}

TEST(AttributionTest, CoTesterIsMalicious) {
  attrib::AttributionResult result =
      attrib::AttributeCorpusApp("CO Tester", BaseHome(), FastOptions());
  EXPECT_EQ(result.verdict, attrib::Verdict::kMalicious);
  // The fake-event monitor (P44) fires in every configuration.
  bool fake_event = false;
  for (const std::string& id : result.violated_properties) {
    fake_event = fake_event || id == "P44";
  }
  EXPECT_TRUE(fake_event);
}

TEST(AttributionTest, WaterValveHelperIsMalicious) {
  attrib::AttributionResult result = attrib::AttributeCorpusApp(
      "Water Valve Helper", BaseHome(), FastOptions());
  EXPECT_EQ(result.verdict, attrib::Verdict::kMalicious);
}

TEST(AttributionTest, PresenceChangePushIsClean) {
  attrib::AttributionResult result = attrib::AttributeCorpusApp(
      "Presence Change Push", BaseHome(), FastOptions());
  EXPECT_EQ(result.verdict, attrib::Verdict::kClean);
  EXPECT_DOUBLE_EQ(result.phase1_ratio, 0.0);
}

TEST(AttributionTest, CameraOnMotionIsClean) {
  config::Deployment home = BaseHome();
  config::DeploymentBuilder b("attribution home + camera");
  home.devices.push_back({"cam1", "camera", {}});
  attrib::AttributionResult result =
      attrib::AttributeCorpusApp("Camera On Motion", home, FastOptions());
  EXPECT_EQ(result.verdict, attrib::Verdict::kClean);
}

TEST(AttributionTest, VirtualThermostatMisconfiguration) {
  // The §2.2 scenario: a home with both a heater outlet and an AC outlet.
  // Some configurations of Virtual Thermostat bind both outlets (the
  // user-study mistake) and violate the HVAC properties; safe
  // configurations exist, so the verdict is misconfiguration.
  config::DeploymentBuilder b("vt home");
  b.ContactPhone("555-0100");
  b.Device("myTempMeas", "temperatureSensor", {"tempSensor"});
  b.Device("myHeaterOutlet", "smartOutlet", {"heaterOutlet"});
  b.Device("myACOutlet", "smartOutlet", {"acOutlet"});
  b.Device("livRoomMotion", "motionSensor");
  b.Device("alicePresence", "presenceSensor", {"presence"});

  attrib::AttributionOptions options;
  options.enumeration.max_configs = 48;
  options.check.max_events = 2;
  attrib::AttributionResult result = attrib::AttributeCorpusApp(
      "Virtual Thermostat", b.Build(), options);
  EXPECT_EQ(result.verdict, attrib::Verdict::kMisconfiguration)
      << "phase1=" << result.phase1_ratio
      << " phase2=" << result.phase2_ratio;
  EXPECT_GT(result.phase2_ratio, 0.0);
  EXPECT_FALSE(result.safe_configs.empty());
}

TEST(AttributionTest, AllNineMaliciousAppsAttributed) {
  // Paper §10.3: IotSan attributes all nine ContexIoT malicious apps
  // with 100% violation ratios.
  const auto malicious = corpus::MaliciousApps();
  ASSERT_EQ(malicious.size(), 9u);
  for (const corpus::CorpusApp* app : malicious) {
    SCOPED_TRACE(app->name);
    attrib::AttributionResult result =
        attrib::AttributeApp(app->source, BaseHome(), FastOptions());
    EXPECT_EQ(result.verdict, attrib::Verdict::kMalicious)
        << "phase1=" << result.phase1_ratio
        << " phase2=" << result.phase2_ratio;
  }
}

TEST(AttributionTest, UnknownAppThrows) {
  EXPECT_THROW(attrib::AttributeCorpusApp("No Such App", BaseHome()),
               ConfigError);
}

}  // namespace
}  // namespace iotsan
