// Dynamic-device-discovery extension tests (the paper's §10.1/§11
// future work): with the extension enabled, the four ContexIoT apps the
// paper rejects become checkable and attributable.
#include <gtest/gtest.h>

#include "attrib/output_analyzer.hpp"
#include "config/builder.hpp"
#include "core/sanitizer.hpp"
#include "corpus/corpus.hpp"

namespace iotsan {
namespace {

config::Deployment DiscoveryHome() {
  config::DeploymentBuilder b("discovery home");
  b.ContactPhone("555-0100");
  b.Device("smokeDet", "smokeDetector", {"smokeSensor", "coSensor"});
  b.Device("siren1", "smartAlarm", {"alarmSiren"});
  b.Device("cam1", "camera", {"camera"});
  b.Device("hallMotion", "motionSensor", {"securityMotion"});
  return b.Build();
}

TEST(DiscoveryExtensionTest, RejectedByDefault) {
  config::Deployment home = DiscoveryHome();
  home.apps.push_back({"Alarm Manager", "Alarm Manager", {}});
  core::Sanitizer sanitizer(home);
  core::SanitizerReport report = sanitizer.Check();
  ASSERT_EQ(report.rejected_apps.size(), 1u);
  EXPECT_NE(report.rejected_apps[0].find("dynamic device discovery"),
            std::string::npos);
}

TEST(DiscoveryExtensionTest, CheckableWhenEnabled) {
  // Alarm Manager "centrally manages" (silences) every alarm on app
  // touch; with a smoke event in flight that violates P17.
  config::Deployment home = DiscoveryHome();
  home.apps.push_back({"Alarm Manager", "Alarm Manager", {}});
  core::Sanitizer sanitizer(home);
  core::SanitizerOptions options;
  options.allow_dynamic_discovery = true;
  options.check.max_events = 2;
  core::SanitizerReport report = sanitizer.Check(options);
  EXPECT_TRUE(report.rejected_apps.empty());
  EXPECT_TRUE(report.HasViolation("P17"))
      << "silencing every alarm while smoke is detected must violate P17";
  // The discovery app is charged: it actuated the alarm-role device.
  bool charged = false;
  for (const checker::Violation& v : report.violations) {
    if (v.property_id != "P17") continue;
    for (const std::string& app : v.apps) {
      charged = charged || app == "Alarm Manager";
    }
  }
  EXPECT_TRUE(charged);
}

TEST(DiscoveryExtensionTest, MidnightCameraRunsItsSchedule) {
  config::Deployment home = DiscoveryHome();
  home.apps.push_back({"Midnight Camera", "Midnight Camera", {}});
  core::Sanitizer sanitizer(home);
  core::SanitizerOptions options;
  options.allow_dynamic_discovery = true;
  options.check.max_events = 1;
  core::SanitizerReport report = sanitizer.Check(options);
  EXPECT_TRUE(report.rejected_apps.empty());
  EXPECT_GT(report.states_explored, 0u);
}

TEST(DiscoveryExtensionTest, AttributionFlagsAlarmManager) {
  attrib::AttributionOptions options;
  options.allow_dynamic_discovery = true;
  options.enumeration.max_configs = 8;
  options.check.max_events = 2;
  attrib::AttributionResult result = attrib::AttributeCorpusApp(
      "Alarm Manager", DiscoveryHome(), options);
  EXPECT_EQ(result.verdict, attrib::Verdict::kMalicious)
      << "phase1=" << result.phase1_ratio;
}

TEST(DiscoveryExtensionTest, AttributionStillRefusesWithoutTheFlag) {
  attrib::AttributionOptions options;
  options.enumeration.max_configs = 8;
  attrib::AttributionResult result = attrib::AttributeCorpusApp(
      "Alarm Manager", DiscoveryHome(), options);
  // Without the extension the app is rejected inside every configuration
  // check, so nothing can be charged to it.
  EXPECT_EQ(result.verdict, attrib::Verdict::kClean);
}

TEST(DiscoveryExtensionTest, WildcardOutputsWidenRelatedSets) {
  // With the extension, a discovery app's handlers can actuate anything,
  // so any handler with device-scope inputs must land in its related set.
  config::Deployment home = DiscoveryHome();
  home.apps.push_back({"Alarm Manager", "Alarm Manager", {}});
  config::AppConfig security;
  security.app = "Smart Security";
  security.label = "Smart Security";
  config::Binding motions;
  motions.device_ids = {"hallMotion"};
  security.inputs["motions"] = motions;
  config::Binding alarms;
  alarms.device_ids = {"siren1"};
  security.inputs["alarms"] = alarms;
  config::Binding armed;
  armed.text = "Away";
  security.inputs["armedMode"] = armed;
  home.apps.push_back(security);

  core::Sanitizer sanitizer(home);
  core::SanitizerOptions options;
  options.allow_dynamic_discovery = true;
  options.check.max_events = 1;
  core::SanitizerReport report = sanitizer.Check(options);
  EXPECT_TRUE(report.rejected_apps.empty());
  // The discovery app's wildcard output overlaps Smart Security's
  // motion-sensor input: both apps share one related set.
  EXPECT_GE(report.scale.new_size, 2);
}

}  // namespace
}  // namespace iotsan
