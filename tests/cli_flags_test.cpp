// Shared CLI flag-table tests (src/cli/flags): strict numeric
// validation, command gating, and table/help consistency — exercised
// directly against the parser the iotsan binary uses, no subprocess.
#include <gtest/gtest.h>

#include "cli/flags.hpp"
#include "util/error.hpp"

namespace iotsan::cli {
namespace {

CliFlags Parse(unsigned command, std::vector<std::string> args) {
  CliFlags flags;
  ParseFlags(command, args, flags);
  return flags;
}

TEST(CliFlagsTest, ParsesValidNumericFlags) {
  const CliFlags flags = Parse(
      kCmdCheck, {"--events", "5", "--jobs", "4", "--progress-every", "1000"});
  EXPECT_EQ(flags.events, 5);
  EXPECT_EQ(flags.jobs, 4);
  EXPECT_EQ(flags.progress_every, 1000u);
}

TEST(CliFlagsTest, SeparatesPositionalsFromFlags) {
  CliFlags flags;
  const std::vector<std::string> positionals = ParseFlags(
      kCmdCheck, {"deployment.json", "--jobs", "2", "--stats"}, flags);
  ASSERT_EQ(positionals.size(), 1u);
  EXPECT_EQ(positionals[0], "deployment.json");
  EXPECT_TRUE(flags.stats);
  EXPECT_EQ(flags.jobs, 2);
}

TEST(CliFlagsTest, RejectsMalformedNumericValues) {
  EXPECT_THROW(Parse(kCmdCheck, {"--jobs", "four"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--jobs", "4x"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--jobs", ""}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--jobs", "1e3"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--events", "3.5"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--bitstate-bits", "big"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--progress-every", "--stats"}), Error);
}

TEST(CliFlagsTest, RejectsOutOfRangeNumericValues) {
  EXPECT_THROW(Parse(kCmdCheck, {"--jobs", "-1"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--jobs", "100000"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--events", "0"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--events", "65"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--bitstate-bits", "9"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--bitstate-bits", "41"}), Error);
  EXPECT_NO_THROW(Parse(kCmdCheck, {"--bitstate-bits", "10"}));
  EXPECT_NO_THROW(Parse(kCmdCheck, {"--bitstate-bits", "40"}));
  EXPECT_NO_THROW(Parse(kCmdCheck, {"--jobs", "0"}));
}

TEST(CliFlagsTest, ErrorNamesTheFlag) {
  try {
    Parse(kCmdCheck, {"--jobs", "four"});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("four"), std::string::npos);
  }
}

TEST(CliFlagsTest, RejectsMissingValueAndUnknownFlag) {
  EXPECT_THROW(Parse(kCmdCheck, {"--jobs"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--no-such-flag"}), Error);
}

TEST(CliFlagsTest, RejectsFlagsTheCommandDoesNotAccept) {
  EXPECT_THROW(Parse(kCmdDeps, {"--jobs", "2"}), Error);
  EXPECT_THROW(Parse(kCmdPromela, {"--cache-dir", "/tmp/x"}), Error);
  EXPECT_NO_THROW(Parse(kCmdDeps, {"--stats"}));
}

TEST(CliFlagsTest, CacheDirAcceptedByCheckAndAttribute) {
  EXPECT_EQ(Parse(kCmdCheck, {"--cache-dir", "/tmp/c"}).cache_dir, "/tmp/c");
  EXPECT_EQ(Parse(kCmdAttribute, {"--cache-dir", "/tmp/c"}).cache_dir,
            "/tmp/c");
}

TEST(CliFlagsTest, MetricsOutAndAccessLogAreCommandGated) {
  // --metrics-out belongs to check, --access-log to serve — each is
  // rejected everywhere else.
  EXPECT_EQ(Parse(kCmdCheck, {"--metrics-out", "/tmp/m.prom"}).metrics_out,
            "/tmp/m.prom");
  EXPECT_EQ(Parse(kCmdServe, {"--access-log", "/tmp/a.jsonl"}).access_log,
            "/tmp/a.jsonl");
  EXPECT_THROW(Parse(kCmdServe, {"--metrics-out", "/tmp/m.prom"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--access-log", "/tmp/a.jsonl"}), Error);
  EXPECT_THROW(Parse(kCmdCheck, {"--metrics-out"}), Error);
}

TEST(CliFlagsTest, PorAndStateCompressionAreCheckAndAttributeFlags) {
  const CliFlags flags =
      Parse(kCmdCheck, {"--por", "--state-compression"});
  EXPECT_TRUE(flags.por);
  EXPECT_TRUE(flags.state_compression);
  EXPECT_FALSE(Parse(kCmdCheck, {}).por);
  EXPECT_FALSE(Parse(kCmdCheck, {}).state_compression);
  EXPECT_TRUE(Parse(kCmdAttribute, {"--por"}).por);
  EXPECT_THROW(Parse(kCmdServe, {"--por"}), Error);
  EXPECT_THROW(Parse(kCmdDeps, {"--state-compression"}), Error);
}

TEST(CliFlagsTest, BitstateBitsImpliesBitstate) {
  const CliFlags flags = Parse(kCmdCheck, {"--bitstate-bits", "20"});
  EXPECT_TRUE(flags.bitstate);
  EXPECT_EQ(flags.bitstate_bits_pow, 20);
}

TEST(CliFlagsTest, ParseFlagIntStrictness) {
  EXPECT_EQ(ParseFlagInt("--x", "42", 0, 100), 42);
  EXPECT_EQ(ParseFlagInt("--x", "-3", -10, 10), -3);
  EXPECT_THROW(ParseFlagInt("--x", " 42", 0, 100), Error);
  EXPECT_THROW(ParseFlagInt("--x", "42 ", 0, 100), Error);
  EXPECT_THROW(ParseFlagInt("--x", "0x10", 0, 100), Error);
  EXPECT_THROW(ParseFlagInt("--x", "999999999999999999999", 0, 100), Error);
}

TEST(CliFlagsTest, TableIsSelfConsistent) {
  for (const FlagSpec& spec : FlagTable()) {
    // Every flag spells "--name" and belongs to at least one command.
    EXPECT_EQ(std::string(spec.name).rfind("--", 0), 0u) << spec.name;
    EXPECT_NE(spec.commands, 0u) << spec.name;
    // A declared numeric range requires a value argument.
    if (spec.min < spec.max) {
      EXPECT_NE(spec.arg, nullptr) << spec.name;
    }
    // The table is the single source of truth for lookup.
    EXPECT_EQ(FindFlag(spec.name), &spec);
  }
  EXPECT_EQ(FindFlag("--nope"), nullptr);
}

TEST(CliFlagsTest, UsageListsOnlyAcceptedFlags) {
  const std::string usage = UsageFor(kCmdPromela);
  EXPECT_NE(usage.find("--events"), std::string::npos);
  EXPECT_EQ(usage.find("--jobs"), std::string::npos);
  EXPECT_EQ(usage.find("--cache-dir"), std::string::npos);
}

}  // namespace
}  // namespace iotsan::cli
