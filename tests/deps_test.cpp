// Dependency-graph and related-set tests: exact reproduction of the
// paper's §5 running example (Table 2, Fig. 4, Tables 3a/3c) plus
// structural properties of the algorithm.
#include <gtest/gtest.h>

#include <algorithm>

#include "corpus/corpus.hpp"
#include "corpus/groups.hpp"
#include "deps/dependency_graph.hpp"
#include "ir/analyzer.hpp"

namespace iotsan::deps {
namespace {

std::vector<ir::AnalyzedApp> PaperExampleApps() {
  std::vector<ir::AnalyzedApp> apps;
  for (const char* name :
       {"Brighten Dark Places", "Let There Be Dark!", "Auto Mode Change",
        "Unlock Door", "Big Turn On"}) {
    const corpus::CorpusApp* app = corpus::FindApp(name);
    apps.push_back(ir::AnalyzeSource(app->source, name));
  }
  return apps;
}

std::vector<std::vector<int>> SortedSets(
    const std::vector<RelatedSet>& sets) {
  std::vector<std::vector<int>> out;
  for (const RelatedSet& set : sets) out.push_back(set.vertices);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DependencyGraphTest, PaperFig4Vertices) {
  auto apps = PaperExampleApps();
  DependencyGraph graph = DependencyGraph::Build(apps);
  // 7 handlers, no SCCs -> 7 vertices numbered in declaration order
  // (Table 2's ids).
  ASSERT_EQ(graph.vertices().size(), 7u);
  for (const Vertex& v : graph.vertices()) {
    EXPECT_EQ(v.members.size(), 1u);
  }
}

TEST(DependencyGraphTest, PaperFig4Edges) {
  auto apps = PaperExampleApps();
  DependencyGraph graph = DependencyGraph::Build(apps);
  // Fig. 4a: vertex 2 (Auto Mode Change.presenceHandler) is the only
  // parent, with children 4 and 6.
  std::vector<int> children2 = graph.children()[2];
  std::sort(children2.begin(), children2.end());
  EXPECT_EQ(children2, (std::vector<int>{4, 6}));
  for (std::size_t v : {0u, 1u, 3u, 4u, 5u, 6u}) {
    EXPECT_TRUE(graph.children()[v].empty()) << v;
  }
}

TEST(DependencyGraphTest, PaperTable3aInitialSets) {
  auto apps = PaperExampleApps();
  DependencyGraph graph = DependencyGraph::Build(apps);
  EXPECT_EQ(graph.Leaves(), (std::vector<int>{0, 1, 3, 4, 5, 6}));
  EXPECT_EQ(graph.AncestorClosure(4), (std::vector<int>{2, 4}));
  EXPECT_EQ(graph.AncestorClosure(6), (std::vector<int>{2, 6}));
  EXPECT_EQ(graph.AncestorClosure(0), (std::vector<int>{0}));
}

TEST(DependencyGraphTest, PaperTable3cFinalSets) {
  auto apps = PaperExampleApps();
  DependencyGraph graph = DependencyGraph::Build(apps);
  std::vector<std::vector<int>> sets = SortedSets(ComputeRelatedSets(graph));
  // Table 3c: {3}, {2,4}, {0,1}, {1,5}, {1,2,6}.
  std::vector<std::vector<int>> expected = {
      {0, 1}, {1, 2, 6}, {1, 5}, {2, 4}, {3}};
  EXPECT_EQ(sets, expected);
}

TEST(DependencyGraphTest, ScaleStatsOnPaperExample) {
  auto apps = PaperExampleApps();
  ScaleStats stats = ComputeScaleStats(apps);
  EXPECT_EQ(stats.original_size, 7);
  EXPECT_EQ(stats.new_size, 3);  // {1, 2, 6}
  EXPECT_NEAR(stats.ratio, 7.0 / 3.0, 1e-9);
}

TEST(DependencyGraphTest, SccMerging) {
  // Two handlers feeding each other (switch/on <-> switch/off loop) must
  // merge into one composite vertex.
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(R"(
definition(name: "PingPong", namespace: "t")
preferences {
    section("S") {
        input "sw", "capability.switch", multiple: true
    }
}
def installed() {
    subscribe(sw, "switch.on", onHandler)
    subscribe(sw, "switch.off", offHandler)
}
def onHandler(evt) { sw.off() }
def offHandler(evt) { sw.on() }
)",
                                    "PingPong"));
  DependencyGraph graph = DependencyGraph::Build(apps);
  ASSERT_EQ(graph.vertices().size(), 1u);
  EXPECT_EQ(graph.vertices()[0].members.size(), 2u);
  // The composite vertex carries the union interface.
  EXPECT_GE(graph.vertices()[0].outputs.size(), 2u);
}

TEST(DependencyGraphTest, IndependentAppsStaySeparate) {
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(R"(
definition(name: "A", namespace: "t")
preferences { section("S") { input "m", "capability.motionSensor"
        input "sw", "capability.switch" } }
def installed() { subscribe(m, "motion.active", h) }
def h(evt) { sw.on() }
)",
                                   "A"));
  apps.push_back(ir::AnalyzeSource(R"(
definition(name: "B", namespace: "t")
preferences { section("S") { input "c", "capability.contactSensor"
        input "lock1", "capability.lock" } }
def installed() { subscribe(c, "contact.open", h) }
def h(evt) { lock1.lock() }
)",
                                   "B"));
  DependencyGraph graph = DependencyGraph::Build(apps);
  std::vector<RelatedSet> sets = ComputeRelatedSets(graph);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].apps.size(), 1u);
  EXPECT_EQ(sets[1].apps.size(), 1u);
}

TEST(DependencyGraphTest, EmptyInput) {
  std::vector<ir::AnalyzedApp> apps;
  DependencyGraph graph = DependencyGraph::Build(apps);
  EXPECT_TRUE(graph.vertices().empty());
  EXPECT_TRUE(ComputeRelatedSets(graph).empty());
}

TEST(DependencyGraphTest, DotRenderingMentionsHandlers) {
  auto apps = PaperExampleApps();
  DependencyGraph graph = DependencyGraph::Build(apps);
  std::string dot = graph.ToDot(apps);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Auto Mode Change.presenceHandler"),
            std::string::npos);
  EXPECT_NE(dot.find("v2 -> v4"), std::string::npos);
}

TEST(RelatedSetTest, SubsetsAreRemoved) {
  auto apps = PaperExampleApps();
  DependencyGraph graph = DependencyGraph::Build(apps);
  std::vector<RelatedSet> sets = ComputeRelatedSets(graph);
  // No set may be a subset of another.
  for (const RelatedSet& a : sets) {
    for (const RelatedSet& b : sets) {
      if (&a == &b) continue;
      EXPECT_FALSE(std::includes(b.vertices.begin(), b.vertices.end(),
                                 a.vertices.begin(), a.vertices.end()))
          << "subset not removed";
    }
  }
}

TEST(RelatedSetTest, EveryVertexCovered) {
  auto apps = PaperExampleApps();
  DependencyGraph graph = DependencyGraph::Build(apps);
  std::vector<RelatedSet> sets = ComputeRelatedSets(graph);
  std::vector<bool> covered(graph.vertices().size(), false);
  for (const RelatedSet& set : sets) {
    for (int v : set.vertices) covered[static_cast<std::size_t>(v)] = true;
  }
  for (std::size_t v = 0; v < covered.size(); ++v) {
    EXPECT_TRUE(covered[v]) << "vertex " << v << " uncovered";
  }
}

/// Property sweep over every expert group: related sets must cover all
/// vertices, contain no subset pairs, and the scale ratio is >= 1.
class GroupStructureTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupStructureTest, RelatedSetInvariants) {
  const corpus::SystemUnderTest& sut =
      corpus::ExpertGroups()[static_cast<std::size_t>(GetParam())];
  std::vector<ir::AnalyzedApp> apps;
  for (const config::AppConfig& instance : sut.deployment.apps) {
    const corpus::CorpusApp* base = corpus::FindApp(instance.app);
    const std::string& source = base != nullptr
                                    ? base->source
                                    : sut.extra_sources.at(instance.app);
    apps.push_back(ir::AnalyzeSource(source, instance.app));
  }
  DependencyGraph graph = DependencyGraph::Build(apps);
  std::vector<RelatedSet> sets = ComputeRelatedSets(graph);
  ASSERT_FALSE(sets.empty());

  std::vector<bool> covered(graph.vertices().size(), false);
  for (const RelatedSet& set : sets) {
    EXPECT_FALSE(set.vertices.empty());
    EXPECT_TRUE(std::is_sorted(set.vertices.begin(), set.vertices.end()));
    for (int v : set.vertices) covered[static_cast<std::size_t>(v)] = true;
  }
  for (std::size_t v = 0; v < covered.size(); ++v) {
    EXPECT_TRUE(covered[v]) << "vertex " << v << " uncovered";
  }
  for (const RelatedSet& a : sets) {
    for (const RelatedSet& b : sets) {
      if (&a == &b) continue;
      EXPECT_FALSE(std::includes(b.vertices.begin(), b.vertices.end(),
                                 a.vertices.begin(), a.vertices.end()));
    }
  }
  ScaleStats stats = ComputeScaleStats(apps);
  EXPECT_GE(stats.ratio, 1.0);
  EXPECT_LE(stats.new_size, stats.original_size);
}

INSTANTIATE_TEST_SUITE_P(ExpertGroups, GroupStructureTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace iotsan::deps
