// Verification-service integration tests (src/server): a real listener
// on an ephemeral loopback port, driven by plain POSIX-socket clients.
//
// Covered here:
//   * the JSON API surface (health, version, metrics, check, attribute)
//   * response `text` byte-identical to the shared core::RunCheck path
//     (cache-warmed so the replayed timing matches exactly)
//   * structured 400/404/405/413 errors with machine-readable codes
//   * concurrent mixed check/attribute traffic from many client threads
//   * graceful drain under load: every accepted request is answered
//     with a complete response, then the server exits cleanly
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "checker/trace.hpp"
#include "config/builder.hpp"
#include "core/service.hpp"
#include "server/handlers.hpp"
#include "server/server.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace iotsan::server {
namespace {

// ---- loopback HTTP client ----------------------------------------------------

struct ClientResponse {
  int status = 0;
  std::string head;  // raw header block (status line through last header)
  std::string body;
  bool complete = false;  // headers + full Content-Length body received
};

/// Value of `name` in the response's header block ("" when absent).
std::string HeaderValue(const ClientResponse& response,
                        const std::string& name) {
  const std::string marker = "\r\n" + name + ": ";
  const std::size_t at = response.head.find(marker);
  if (at == std::string::npos) return "";
  const std::size_t start = at + marker.size();
  return response.head.substr(
      start, response.head.find("\r\n", start) - start);
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one response off `fd` (headers, then exactly Content-Length
/// body bytes).  Marks `complete` only when nothing was truncated, so
/// the drain test can assert no request got a partial answer.
ClientResponse ReadResponse(int fd) {
  ClientResponse out;
  std::string data;
  char chunk[4096];
  std::size_t head_end;
  while ((head_end = data.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return out;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  const std::string head = data.substr(0, head_end);
  if (head.rfind("HTTP/1.1 ", 0) != 0) return out;
  out.head = head;
  out.status = std::atoi(head.c_str() + 9);
  std::size_t body_len = 0;
  const std::string marker = "Content-Length: ";
  if (const std::size_t at = head.find(marker); at != std::string::npos) {
    body_len = static_cast<std::size_t>(
        std::atoll(head.c_str() + at + marker.size()));
  }
  while (data.size() < head_end + 4 + body_len) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return out;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  out.body = data.substr(head_end + 4, body_len);
  out.complete = true;
  return out;
}

/// One-shot request: connect, send, read one response, close.
/// `extra_headers` are raw "Name: value\r\n" lines.
ClientResponse Fetch(int port, const std::string& method,
                     const std::string& target, const std::string& body = "",
                     const std::string& extra_headers = "") {
  ClientResponse out;
  const int fd = ConnectLoopback(port);
  if (fd < 0) return out;
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: 127.0.0.1\r\nConnection: close\r\n";
  wire += extra_headers;
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  wire += body;
  if (SendAll(fd, wire)) out = ReadResponse(fd);
  ::close(fd);
  return out;
}

// ---- fixtures ----------------------------------------------------------------

/// The paper's §8 running example — two devices, two conflicting apps,
/// two violated properties.  Small enough that a check is milliseconds.
json::Value ViolatingDeploymentJson() {
  json::Object lock;
  lock["id"] = "doorLock";
  lock["type"] = "smartLock";
  lock["roles"] = json::Array{json::Value("mainDoorLock")};
  json::Object presence;
  presence["id"] = "alicePresence";
  presence["type"] = "presenceSensor";
  presence["roles"] = json::Array{json::Value("presence")};

  json::Object mode_app;
  mode_app["app"] = "Auto Mode Change";
  json::Object mode_inputs;
  mode_inputs["people"] = json::Array{json::Value("alicePresence")};
  mode_inputs["homeMode"] = "Home";
  mode_inputs["awayMode"] = "Away";
  mode_app["inputs"] = std::move(mode_inputs);
  json::Object unlock_app;
  unlock_app["app"] = "Unlock Door";
  json::Object unlock_inputs;
  unlock_inputs["lock1"] = json::Array{json::Value("doorLock")};
  unlock_app["inputs"] = std::move(unlock_inputs);

  json::Object doc;
  doc["name"] = "server test home";
  doc["devices"] = json::Array{json::Value(std::move(presence)),
                               json::Value(std::move(lock))};
  doc["apps"] = json::Array{json::Value(std::move(mode_app)),
                            json::Value(std::move(unlock_app))};
  return json::Value(std::move(doc));
}

std::string CheckBody(int jobs = 1) {
  json::Object doc;
  doc["schema"] = kRequestSchema;
  doc["deployment"] = ViolatingDeploymentJson();
  json::Object options;
  options["jobs"] = static_cast<std::int64_t>(jobs);
  doc["options"] = std::move(options);
  return json::Value(std::move(doc)).Dump(0);
}

std::string AttributeBody() {
  json::Object doc;
  doc["schema"] = kRequestSchema;
  doc["deployment"] = ViolatingDeploymentJson();
  json::Object app;
  app["corpus"] = "Unlock Door";
  doc["app"] = std::move(app);
  json::Object options;
  options["jobs"] = std::int64_t{1};
  doc["options"] = std::move(options);
  return json::Value(std::move(doc)).Dump(0);
}

std::string TempDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("iotsan_server_test_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerConfig config = {}) {
    config.port = 0;  // ephemeral
    telemetry::SetActive(&registry_);
    server_ = std::make_unique<Server>(std::move(config));
    server_->Start();
  }

  void TearDown() override {
    if (server_) server_->Stop();
    telemetry::SetActive(nullptr);
  }

  telemetry::Registry registry_;
  std::unique_ptr<Server> server_;
};

// ---- API surface -------------------------------------------------------------

TEST_F(ServerTest, HealthVersionMetrics) {
  StartServer();
  const int port = server_->port();

  ClientResponse health = Fetch(port, "GET", "/v1/health");
  ASSERT_TRUE(health.complete);
  EXPECT_EQ(health.status, 200);
  json::Value health_doc = json::Parse(health.body);
  EXPECT_EQ(health_doc.At("status").AsString(), "ok");
  EXPECT_GE(health_doc.At("uptime_seconds").AsNumber(), 0.0);

  ClientResponse version = Fetch(port, "GET", "/v1/version");
  ASSERT_TRUE(version.complete);
  EXPECT_EQ(version.status, 200);
  EXPECT_FALSE(json::Parse(version.body).At("version").AsString().empty());

  ClientResponse metrics = Fetch(port, "GET", "/v1/metrics");
  ASSERT_TRUE(metrics.complete);
  EXPECT_EQ(metrics.status, 200);
  json::Value metrics_doc = json::Parse(metrics.body);
  EXPECT_EQ(metrics_doc.At("schema").AsString(), "iotsan.metrics/1");
  const json::Value& counters = metrics_doc.At("counters");
  // The two earlier GETs are already on the board.
  EXPECT_GE(counters.At("server").At("requests").AsInt(), 2);
  EXPECT_TRUE(counters.Has("search"));
  EXPECT_TRUE(counters.Has("cache"));
}

TEST_F(ServerTest, CheckReportsViolationsWithSharedRenderer) {
  StartServer();
  ClientResponse response =
      Fetch(server_->port(), "POST", "/v1/check", CheckBody());
  ASSERT_TRUE(response.complete);
  EXPECT_EQ(response.status, 200);
  json::Value doc = json::Parse(response.body);
  EXPECT_EQ(doc.At("schema").AsString(), kResponseSchema);
  EXPECT_EQ(doc.At("verdict").AsString(), "violations");
  EXPECT_EQ(doc.At("exit_code").AsInt(), 1);
  // The text is the shared renderer's output: header through RESULT.
  const std::string& text = doc.At("text").AsString();
  EXPECT_NE(text.find("system: server test home (2 devices, 2 apps)\n"),
            std::string::npos);
  EXPECT_NE(text.find("RESULT: 2 violated properties\n"), std::string::npos);
  const json::Value& report = doc.At("report");
  EXPECT_EQ(report.At("violations").AsArray().size(), 2u);
  EXPECT_GT(report.At("states_explored").AsInt(), 0);
}

TEST_F(ServerTest, WarmCacheResponseIsByteIdenticalToCliPath) {
  const std::string cache_dir = TempDir("warm");
  // Cold run through the exact code path `iotsan check` uses, warming
  // the shared on-disk cache.  The replayed cache entry restores the
  // recorded `seconds`, so the warm texts match byte for byte, timing
  // line included.
  cache::CacheConfig cache_config;
  cache_config.dir = cache_dir;
  std::string cli_text;
  {
    cache::ResultCache warm_cache(cache_config);
    core::ServiceEnv env;
    env.cache = &warm_cache;
    core::CheckRequest request;
    request.deployment =
        config::ParseDeployment(ViolatingDeploymentJson());
    request.options.jobs = 1;
    cli_text = core::RunCheck(request, env).text;       // cold: fills cache
    const std::string warm = core::RunCheck(request, env).text;
    ASSERT_EQ(cli_text, warm);  // cache replay is deterministic
  }

  ServerConfig config;
  config.cache_dir = cache_dir;
  StartServer(std::move(config));
  ClientResponse response =
      Fetch(server_->port(), "POST", "/v1/check", CheckBody(/*jobs=*/1));
  ASSERT_TRUE(response.complete);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(json::Parse(response.body).At("text").AsString(), cli_text);
  EXPECT_GT(registry_.cache.hits.load(), 0u);
  std::filesystem::remove_all(cache_dir);
}

TEST_F(ServerTest, AttributeEndpoint) {
  StartServer();
  ClientResponse response =
      Fetch(server_->port(), "POST", "/v1/attribute", AttributeBody());
  ASSERT_TRUE(response.complete);
  EXPECT_EQ(response.status, 200);
  json::Value doc = json::Parse(response.body);
  // "Unlock Door" alone violates lock invariants on this deployment.
  EXPECT_NE(doc.At("verdict").AsString(), "clean");
  EXPECT_EQ(doc.At("exit_code").AsInt(), 1);
  EXPECT_EQ(doc.At("report").At("app").AsString(), "Unlock Door");
  EXPECT_GT(registry_.server.attributions.load(), 0u);
}

// ---- structured errors -------------------------------------------------------

std::string ErrorCode(const ClientResponse& response) {
  return json::Parse(response.body).At("error").At("code").AsString();
}

TEST_F(ServerTest, MalformedBodiesAreStructuredClientErrors) {
  StartServer();
  const int port = server_->port();

  ClientResponse bad_json = Fetch(port, "POST", "/v1/check", "{nope");
  ASSERT_TRUE(bad_json.complete);
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_EQ(ErrorCode(bad_json), "bad_json");

  ClientResponse bad_schema = Fetch(
      port, "POST", "/v1/check",
      R"({"schema": "iotsan.request/99", "deployment": {}})");
  ASSERT_TRUE(bad_schema.complete);
  EXPECT_EQ(bad_schema.status, 400);
  EXPECT_EQ(ErrorCode(bad_schema), "bad_schema");

  ClientResponse no_deployment =
      Fetch(port, "POST", "/v1/check", R"({"schema": "iotsan.request/1"})");
  ASSERT_TRUE(no_deployment.complete);
  EXPECT_EQ(no_deployment.status, 400);
  EXPECT_EQ(ErrorCode(no_deployment), "bad_schema");

  // Option validation mirrors the CLI flag table's ranges; unknown keys
  // are rejected instead of silently defaulting.
  json::Value with_options = json::Parse(CheckBody());
  json::Object bad_options;
  bad_options["jobs"] = std::int64_t{999999};
  with_options.MutableObject()["options"] = std::move(bad_options);
  ClientResponse bad_range =
      Fetch(port, "POST", "/v1/check", with_options.Dump(0));
  ASSERT_TRUE(bad_range.complete);
  EXPECT_EQ(bad_range.status, 400);
  EXPECT_EQ(ErrorCode(bad_range), "bad_request");

  json::Object typo_options;
  typo_options["evnets"] = std::int64_t{3};
  with_options.MutableObject()["options"] = std::move(typo_options);
  ClientResponse typo =
      Fetch(port, "POST", "/v1/check", with_options.Dump(0));
  ASSERT_TRUE(typo.complete);
  EXPECT_EQ(typo.status, 400);
  EXPECT_EQ(ErrorCode(typo), "bad_request");

  ClientResponse not_found = Fetch(port, "GET", "/v1/nope");
  ASSERT_TRUE(not_found.complete);
  EXPECT_EQ(not_found.status, 404);
  EXPECT_EQ(ErrorCode(not_found), "not_found");

  ClientResponse wrong_method = Fetch(port, "GET", "/v1/check");
  ASSERT_TRUE(wrong_method.complete);
  EXPECT_EQ(wrong_method.status, 405);
  EXPECT_EQ(ErrorCode(wrong_method), "method_not_allowed");

  EXPECT_GT(registry_.server.responses_client_error.load(), 0u);
}

TEST_F(ServerTest, OversizedBodyIsShedWith413) {
  ServerConfig config;
  config.max_body_bytes = 512;
  StartServer(std::move(config));
  ClientResponse response = Fetch(server_->port(), "POST", "/v1/check",
                                  std::string(4096, 'x'));
  ASSERT_TRUE(response.complete);
  EXPECT_EQ(response.status, 413);
  EXPECT_EQ(ErrorCode(response), "payload_too_large");
  EXPECT_EQ(registry_.server.shed_oversized.load(), 1u);
}

TEST_F(ServerTest, MalformedHttpIsRejected) {
  StartServer();
  const int fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "this is not http\r\n\r\n"));
  ClientResponse response = ReadResponse(fd);
  ::close(fd);
  ASSERT_TRUE(response.complete);
  EXPECT_EQ(response.status, 400);
  EXPECT_EQ(ErrorCode(response), "bad_request");
}

// ---- request deadlines -------------------------------------------------------

TEST_F(ServerTest, RequestInterruptWindsDownAsBudgetHit) {
  // The per-request deadline rides the checker's CancelFn plumbing;
  // the same path serves the drain interrupt.  A pre-raised interrupt
  // flag must wind the search down as an incomplete (budget-hit) run —
  // quickly, and without caching the partial result.
  std::atomic<bool> interrupt{true};
  core::ServiceEnv env;
  env.interrupt = &interrupt;
  core::CheckRequest request;
  request.deployment = config::ParseDeployment(ViolatingDeploymentJson());
  request.options.jobs = 1;
  core::CheckResponse response = core::RunCheck(request, env);
  EXPECT_FALSE(response.report.completed);
  EXPECT_NE(response.text.find("(budget hit)"), std::string::npos);
}

// ---- concurrency and drain ---------------------------------------------------

TEST_F(ServerTest, ConcurrentMixedTrafficMatchesSerialResponses) {
  const std::string cache_dir = TempDir("mixed");
  ServerConfig config;
  config.cache_dir = cache_dir;
  config.http_workers = 4;
  StartServer(std::move(config));
  const int port = server_->port();

  // Serial reference responses (these also warm the cache, so every
  // concurrent repeat replays the same stored result byte for byte).
  ClientResponse check_ref = Fetch(port, "POST", "/v1/check", CheckBody());
  ClientResponse attr_ref =
      Fetch(port, "POST", "/v1/attribute", AttributeBody());
  ASSERT_TRUE(check_ref.complete);
  ASSERT_TRUE(attr_ref.complete);
  ASSERT_EQ(check_ref.status, 200);
  ASSERT_EQ(attr_ref.status, 200);

  // Correlation makes each response unique: strip the per-request id
  // (top level and inside artifact manifests) before comparing.
  auto normalized = [](const std::string& body) {
    json::Value doc = json::Parse(body);
    doc.MutableObject().erase("request_id");
    doc.MutableObject().erase("artifacts");
    return doc.Dump(0);
  };
  const std::string check_expected = normalized(check_ref.body);
  const std::string attr_expected = normalized(attr_ref.body);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    clients.emplace_back([&, i] {
      for (int j = 0; j < kPerThread; ++j) {
        const bool attribute = (i + j) % 2 == 0;
        ClientResponse response =
            attribute ? Fetch(port, "POST", "/v1/attribute", AttributeBody())
                      : Fetch(port, "POST", "/v1/check", CheckBody());
        if (!response.complete || response.status != 200) {
          ++failures;
          continue;
        }
        const std::string& expected =
            attribute ? attr_expected : check_expected;
        if (normalized(response.body) != expected) ++mismatches;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(registry_.server.checks.load(),
            static_cast<std::uint64_t>(kThreads * kPerThread / 2));
  std::filesystem::remove_all(cache_dir);
}

TEST_F(ServerTest, GracefulDrainAnswersEveryAcceptedRequest) {
  ServerConfig config;
  config.http_workers = 4;
  StartServer(std::move(config));
  const int port = server_->port();

  constexpr int kThreads = 6;
  std::atomic<int> incomplete{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    clients.emplace_back([&] {
      for (int j = 0; j < 4; ++j) {
        const int fd = ConnectLoopback(port);
        if (fd < 0) return;  // listener already gone: fine mid-drain
        std::string body = CheckBody();
        std::string wire = "POST /v1/check HTTP/1.1\r\nHost: l\r\n"
                           "Content-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body;
        if (!SendAll(fd, wire)) {
          ::close(fd);
          return;
        }
        ClientResponse response = ReadResponse(fd);
        ::close(fd);
        if (response.status == 0) return;  // drained before being served
        // A started response must never be truncated mid-body.
        if (!response.complete) {
          ++incomplete;
        } else {
          ++answered;
        }
      }
    });
  }
  // Let some requests land, then drain while clients are still firing.
  while (answered.load() == 0 && incomplete.load() == 0) {
    std::this_thread::yield();
  }
  server_->Stop();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(incomplete.load(), 0);
  EXPECT_GT(answered.load(), 0);
  EXPECT_FALSE(server_->running());
}

// ---- request correlation -----------------------------------------------------

TEST_F(ServerTest, EveryResponseCarriesAGeneratedRequestId) {
  StartServer();
  const int port = server_->port();

  // Success, 404, and 405 responses all carry the header, and JSON
  // bodies echo the same id at the top level.
  for (const auto& [method, target] :
       std::vector<std::pair<std::string, std::string>>{
           {"GET", "/v1/health"}, {"GET", "/v1/nope"}, {"GET", "/v1/check"}}) {
    ClientResponse response = Fetch(port, method, target);
    ASSERT_TRUE(response.complete) << target;
    const std::string id = HeaderValue(response, "X-Request-Id");
    EXPECT_EQ(id.size(), 16u) << target;  // generated: 16 hex digits
    EXPECT_EQ(json::Parse(response.body).At("request_id").AsString(), id)
        << target;
  }

  // Two requests never share a generated id.
  ClientResponse a = Fetch(port, "GET", "/v1/health");
  ClientResponse b = Fetch(port, "GET", "/v1/health");
  EXPECT_NE(HeaderValue(a, "X-Request-Id"), HeaderValue(b, "X-Request-Id"));
}

TEST_F(ServerTest, ClientSuppliedRequestIdIsEchoedWhenValid) {
  StartServer();
  const int port = server_->port();

  ClientResponse echoed = Fetch(port, "GET", "/v1/health", "",
                                "X-Request-Id: my-trace_1.42\r\n");
  ASSERT_TRUE(echoed.complete);
  EXPECT_EQ(HeaderValue(echoed, "X-Request-Id"), "my-trace_1.42");
  EXPECT_EQ(json::Parse(echoed.body).At("request_id").AsString(),
            "my-trace_1.42");

  // Ids with characters outside [A-Za-z0-9._-] or longer than 64 are
  // replaced with a generated one instead of being reflected back.
  ClientResponse invalid = Fetch(port, "GET", "/v1/health", "",
                                 "X-Request-Id: bad id \"quotes\"\r\n");
  ASSERT_TRUE(invalid.complete);
  const std::string replaced = HeaderValue(invalid, "X-Request-Id");
  EXPECT_EQ(replaced.size(), 16u);
  EXPECT_EQ(replaced.find(' '), std::string::npos);

  ClientResponse too_long = Fetch(port, "GET", "/v1/health", "",
                                  "X-Request-Id: " + std::string(65, 'a') +
                                      "\r\n");
  ASSERT_TRUE(too_long.complete);
  EXPECT_EQ(HeaderValue(too_long, "X-Request-Id").size(), 16u);
}

TEST_F(ServerTest, CheckViolationArtifactsCarryTheRequestId) {
  StartServer();
  ClientResponse response =
      Fetch(server_->port(), "POST", "/v1/check", CheckBody(),
            "X-Request-Id: corr-7\r\n");
  ASSERT_TRUE(response.complete);
  ASSERT_EQ(response.status, 200);
  json::Value doc = json::Parse(response.body);
  EXPECT_EQ(doc.At("request_id").AsString(), "corr-7");
  // The §8 deployment violates two properties; each artifact's manifest
  // names the originating request.
  ASSERT_TRUE(doc.Has("artifacts"));
  const json::Array& artifacts = doc.At("artifacts").AsArray();
  ASSERT_EQ(artifacts.size(), 2u);
  for (const json::Value& artifact_json : artifacts) {
    const checker::ViolationArtifact artifact =
        checker::ArtifactFromJson(artifact_json);
    EXPECT_EQ(artifact.manifest.request_id, "corr-7");
    EXPECT_TRUE(checker::ValidateArtifact(artifact, "").empty());
  }
}

// ---- metrics content negotiation ---------------------------------------------

TEST_F(ServerTest, MetricsNegotiatesPrometheusExposition) {
  StartServer();
  const int port = server_->port();

  // Prime the request-duration histogram with a couple of requests.
  ASSERT_TRUE(Fetch(port, "GET", "/v1/health").complete);
  ASSERT_TRUE(Fetch(port, "GET", "/v1/version").complete);

  ClientResponse via_query =
      Fetch(port, "GET", "/v1/metrics?format=prometheus");
  ASSERT_TRUE(via_query.complete);
  EXPECT_EQ(via_query.status, 200);
  EXPECT_NE(via_query.head.find(telemetry::kPrometheusContentType),
            std::string::npos);
  for (const std::string& problem :
       telemetry::ValidateExposition(via_query.body)) {
    ADD_FAILURE() << problem;
  }
  // All nine latency families are present, counters too.
  for (const char* family :
       {"iotsan_server_request_duration_us", "iotsan_server_queue_wait_us",
        "iotsan_server_request_body_bytes",
        "iotsan_search_group_check_duration_us",
        "iotsan_search_group_states_per_second",
        "iotsan_cache_lookup_hit_duration_us",
        "iotsan_cache_lookup_miss_duration_us",
        "iotsan_parallel_task_run_duration_us",
        "iotsan_parallel_steal_wait_duration_us"}) {
    EXPECT_NE(via_query.body.find(std::string("# TYPE ") + family +
                                  " histogram"),
              std::string::npos)
        << family;
  }
  EXPECT_NE(via_query.body.find("iotsan_server_requests"),
            std::string::npos);

  ClientResponse via_accept = Fetch(port, "GET", "/v1/metrics", "",
                                    "Accept: text/plain\r\n");
  ASSERT_TRUE(via_accept.complete);
  EXPECT_EQ(via_accept.status, 200);
  EXPECT_NE(via_accept.body.find("# TYPE"), std::string::npos);

  // The default JSON document is byte-compatible with iotsan.metrics/1:
  // same schema, no correlation fields spliced in.
  ClientResponse as_json = Fetch(port, "GET", "/v1/metrics");
  ASSERT_TRUE(as_json.complete);
  json::Value doc = json::Parse(as_json.body);
  EXPECT_EQ(doc.At("schema").AsString(), "iotsan.metrics/1");
  EXPECT_FALSE(doc.Has("request_id"));
  // The correlation header still rides on the response itself.
  EXPECT_EQ(HeaderValue(as_json, "X-Request-Id").size(), 16u);
}

// ---- access log --------------------------------------------------------------

TEST_F(ServerTest, AccessLogWritesOneLinePerRequestWithMatchingIds) {
  const std::string log_dir = TempDir("accesslog");
  const std::string log_path = log_dir + "/access.jsonl";
  ServerConfig config;
  config.http_workers = 4;
  config.access_log_path = log_path;
  StartServer(std::move(config));
  const int port = server_->port();

  // Concurrent clients, each tagging its requests with a unique id.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::mutex sent_mutex;
  std::map<std::string, int> sent;  // id -> expected status
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kThreads; ++i) {
    clients.emplace_back([&, i] {
      for (int j = 0; j < kPerThread; ++j) {
        const std::string id =
            "t" + std::to_string(i) + "-r" + std::to_string(j);
        ClientResponse response = Fetch(port, "GET", "/v1/health", "",
                                        "X-Request-Id: " + id + "\r\n");
        if (!response.complete ||
            HeaderValue(response, "X-Request-Id") != id) {
          ++failures;
          continue;
        }
        std::lock_guard<std::mutex> lock(sent_mutex);
        sent[id] = response.status;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  // One error response too: 404s are logged with their error code.
  ClientResponse missing = Fetch(port, "GET", "/v1/nope", "",
                                 "X-Request-Id: miss-1\r\n");
  ASSERT_TRUE(missing.complete);
  sent["miss-1"] = missing.status;

  server_->Stop();

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::map<std::string, int> logged_count;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value entry = json::Parse(line);
    const std::string id = entry.At("id").AsString();
    ++logged_count[id];
    EXPECT_EQ(entry.At("status").AsInt(), sent.at(id)) << id;
    EXPECT_EQ(entry.At("method").AsString(), "GET");
    EXPECT_GE(entry.At("latency_us").AsNumber(), 0.0);
    EXPECT_GE(entry.At("queue_us").AsNumber(), 0.0);
    EXPECT_GE(entry.At("ts").AsNumber(), 0.0);
    if (id == "miss-1") {
      EXPECT_EQ(entry.At("path").AsString(), "/v1/nope");
      EXPECT_EQ(entry.At("error").At("code").AsString(), "not_found");
    } else {
      EXPECT_EQ(entry.At("path").AsString(), "/v1/health");
      EXPECT_FALSE(entry.Has("error"));
    }
  }
  // Exactly one line per request, every request present.
  EXPECT_EQ(logged_count.size(), sent.size());
  for (const auto& [id, status] : sent) {
    EXPECT_EQ(logged_count[id], 1) << id;
  }
  std::filesystem::remove_all(log_dir);
}

TEST_F(ServerTest, KeepAliveServesSequentialRequests) {
  StartServer();
  const int fd = ConnectLoopback(server_->port());
  ASSERT_GE(fd, 0);
  const std::string get =
      "GET /v1/health HTTP/1.1\r\nHost: l\r\nContent-Length: 0\r\n\r\n";
  ASSERT_TRUE(SendAll(fd, get));
  ClientResponse first = ReadResponse(fd);
  ASSERT_TRUE(first.complete);
  EXPECT_EQ(first.status, 200);
  ASSERT_TRUE(SendAll(fd, get));
  ClientResponse second = ReadResponse(fd);
  ::close(fd);
  ASSERT_TRUE(second.complete);
  EXPECT_EQ(second.status, 200);
}

// ---- live introspection: /v1/status, /v1/events, enriched health -------------

/// One parsed SSE frame.
struct SseEvent {
  std::string name;
  std::string data;
};

/// A streaming client for `GET /v1/events`: reads the chunked response
/// head, then de-chunks and splits SSE frames incrementally, so tests
/// can assert on events while the stream stays open.  Receives carry a
/// timeout so a broken stream fails the test instead of hanging it.
class SseClient {
 public:
  explicit SseClient(int port, const std::string& extra_headers = "") {
    fd_ = ConnectLoopback(port);
    if (fd_ < 0) return;
    struct timeval tv = {};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string wire = "GET /v1/events HTTP/1.1\r\nHost: 127.0.0.1\r\n";
    wire += extra_headers;
    wire += "\r\n";
    if (!SendAll(fd_, wire)) Close();
  }
  ~SseClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool ok() const { return fd_ >= 0; }
  const std::string& head() const { return head_; }

  /// Reads the response head; true when it is a 200 chunked
  /// text/event-stream response.
  bool ReadHead() {
    std::size_t head_end;
    while ((head_end = raw_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    head_ = raw_.substr(0, head_end);
    raw_.erase(0, head_end + 4);
    return head_.rfind("HTTP/1.1 200", 0) == 0 &&
           head_.find("Transfer-Encoding: chunked") != std::string::npos &&
           head_.find("Content-Type: text/event-stream") != std::string::npos;
  }

  /// Blocks for the next SSE event, skipping keepalive comment frames;
  /// false when the stream ends (last-chunk or socket close/timeout).
  bool NextEvent(SseEvent& out) {
    for (;;) {
      std::size_t frame_end;
      while ((frame_end = decoded_.find("\n\n")) == std::string::npos) {
        if (!DechunkOne()) return false;
      }
      const std::string frame = decoded_.substr(0, frame_end);
      decoded_.erase(0, frame_end + 2);
      if (frame.rfind(":", 0) == 0) continue;  // comment (keepalive)
      out = {};
      std::size_t start = 0;
      while (start < frame.size()) {
        std::size_t eol = frame.find('\n', start);
        if (eol == std::string::npos) eol = frame.size();
        const std::string line = frame.substr(start, eol - start);
        if (line.rfind("event: ", 0) == 0) out.name = line.substr(7);
        if (line.rfind("data: ", 0) == 0) out.data = line.substr(6);
        start = eol + 1;
      }
      return true;
    }
  }

 private:
  bool Fill() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    raw_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  /// Decodes one chunked-transfer chunk into `decoded_`; false on the
  /// terminating zero chunk or a dead socket.
  bool DechunkOne() {
    std::size_t size_end;
    while ((size_end = raw_.find("\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    const std::size_t size =
        static_cast<std::size_t>(std::strtoull(raw_.c_str(), nullptr, 16));
    if (size == 0) return false;  // last-chunk: stream over
    while (raw_.size() < size_end + 2 + size + 2) {
      if (!Fill()) return false;
    }
    decoded_.append(raw_, size_end + 2, size);
    raw_.erase(0, size_end + 2 + size + 2);
    return true;
  }

  int fd_ = -1;
  std::string head_;
  std::string raw_;      // bytes as received (still chunk-framed)
  std::string decoded_;  // de-chunked SSE payload
};

TEST(InflightTableTest, RegisterUpdateSnapshotFinish) {
  InflightTable table;
  InflightEntry entry;
  entry.request_id = "req-1";
  entry.endpoint = "check";
  entry.deployment = "alice home";
  entry.fingerprint = "abcd";
  entry.deadline_seconds = 30;
  entry.started = std::chrono::steady_clock::now();
  table.Register(entry);
  EXPECT_EQ(table.size(), 1u);

  telemetry::GroupProgress progress;
  progress.groups_total = 4;
  progress.groups_done = 2;
  progress.states_explored = 1000;
  progress.store_memory_bytes = 4096;
  table.Update("req-1", progress);
  table.Update("no-such-id", progress);  // no-op, must not throw

  const json::Array snapshot = table.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const json::Value& doc = snapshot[0];
  EXPECT_EQ(doc.At("request_id").AsString(), "req-1");
  EXPECT_EQ(doc.At("endpoint").AsString(), "check");
  EXPECT_EQ(doc.At("deployment").AsString(), "alice home");
  EXPECT_EQ(doc.At("groups_total").AsInt(), 4);
  EXPECT_EQ(doc.At("groups_done").AsInt(), 2);
  EXPECT_EQ(doc.At("states_explored").AsInt(), 1000);
  EXPECT_EQ(doc.At("store_memory_bytes").AsInt(), 4096);
  EXPECT_GE(doc.At("elapsed_seconds").AsNumber(), 0.0);
  EXPECT_GE(doc.At("states_per_second").AsNumber(), 0.0);
  EXPECT_EQ(doc.At("deadline_seconds").AsNumber(), 30.0);

  table.Finish("req-1");
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.Snapshot().empty());
}

TEST(EventBrokerTest, PublishFansOutToEverySubscriber) {
  EventBroker broker;
  auto a = broker.Subscribe();
  auto b = broker.Subscribe();
  EXPECT_EQ(broker.subscriber_count(), 2u);

  broker.Publish({"progress", "{\"n\":1}"});
  Event event;
  ASSERT_TRUE(a->Next(event, 0));
  EXPECT_EQ(event.name, "progress");
  EXPECT_EQ(event.data, "{\"n\":1}");
  ASSERT_TRUE(b->Next(event, 0));
  EXPECT_EQ(event.name, "progress");

  broker.Unsubscribe(a);
  EXPECT_EQ(broker.subscriber_count(), 1u);
  broker.Publish({"verdict", "{}"});
  EXPECT_FALSE(a->Next(event, 0));  // unsubscribed: nothing enqueued
  ASSERT_TRUE(b->Next(event, 0));
  EXPECT_EQ(event.name, "verdict");
  broker.Unsubscribe(b);
}

TEST(EventBrokerTest, SlowSubscriberDropsOldProgressButKeepsVerdicts) {
  EventBroker broker;
  auto slow = broker.Subscribe();
  // A verdict published early, then far more progress ticks than the
  // queue bound (256): the ticks must be the casualties, not the verdict.
  broker.Publish({"verdict", "{\"v\":1}"});
  for (int i = 0; i < 400; ++i) {
    broker.Publish({"progress", "{\"i\":" + std::to_string(i) + "}"});
  }
  EXPECT_GT(slow->dropped(), 0u);

  bool saw_verdict = false;
  std::size_t delivered = 0;
  Event event;
  while (slow->Next(event, 0)) {
    ++delivered;
    if (event.name == "verdict") saw_verdict = true;
  }
  EXPECT_TRUE(saw_verdict);
  EXPECT_LE(delivered, 256u);
  broker.Unsubscribe(slow);
}

TEST_F(ServerTest, StatusEndpointReportsIdleSnapshot) {
  StartServer();
  ClientResponse response = Fetch(server_->port(), "GET", "/v1/status");
  ASSERT_TRUE(response.complete);
  EXPECT_EQ(response.status, 200);
  json::Value doc = json::Parse(response.body);
  EXPECT_EQ(doc.At("schema").AsString(), "iotsan.status/1");
  EXPECT_EQ(doc.At("status").AsString(), "ok");
  EXPECT_GE(doc.At("uptime_seconds").AsNumber(), 0.0);
  EXPECT_GT(doc.At("peak_rss_bytes").AsNumber(), 0.0);
  EXPECT_TRUE(doc.At("inflight").AsArray().empty());
  EXPECT_FALSE(doc.At("request_id").AsString().empty());
  // The status handler samples peak RSS into the registry as it reads.
  EXPECT_GT(registry_.memory.peak_rss_bytes.load(), 0u);

  ClientResponse post = Fetch(server_->port(), "POST", "/v1/status");
  ASSERT_TRUE(post.complete);
  EXPECT_EQ(post.status, 405);
}

TEST_F(ServerTest, HealthCarriesBuildInfoAndIntrospectionGauges) {
  StartServer();
  ClientResponse response = Fetch(server_->port(), "GET", "/v1/health");
  ASSERT_TRUE(response.complete);
  EXPECT_EQ(response.status, 200);
  json::Value doc = json::Parse(response.body);
  EXPECT_FALSE(doc.At("version").AsString().empty());
  EXPECT_FALSE(doc.At("build").At("compiler").AsString().empty());
  EXPECT_FALSE(doc.At("build").At("standard").AsString().empty());
  EXPECT_EQ(doc.At("inflight_requests").AsInt(), 0);
  EXPECT_EQ(doc.At("event_subscribers").AsInt(), 0);
  EXPECT_GE(doc.At("active_connections").AsInt(), 1);  // this request
}

TEST_F(ServerTest, EventStreamDeliversProgressThenVerdict) {
  StartServer();
  const int port = server_->port();

  SseClient subscriber(port, "X-Request-Id: stream-1\r\n");
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE(subscriber.ReadHead());
  EXPECT_NE(subscriber.head().find("X-Request-Id: stream-1"),
            std::string::npos);

  SseEvent hello;
  ASSERT_TRUE(subscriber.NextEvent(hello));
  EXPECT_EQ(hello.name, "hello");
  EXPECT_EQ(json::Parse(hello.data).At("request_id").AsString(), "stream-1");

  // With the subscriber attached, a check publishes per-group progress
  // and one terminal verdict, all stamped with the check's request id.
  ClientResponse check = Fetch(port, "POST", "/v1/check", CheckBody(),
                               "X-Request-Id: check-42\r\n");
  ASSERT_TRUE(check.complete);
  ASSERT_EQ(check.status, 200);

  std::size_t progress_events = 0;
  std::uint64_t last_groups_done = 0;
  SseEvent event;
  bool saw_verdict = false;
  while (!saw_verdict) {
    ASSERT_TRUE(subscriber.NextEvent(event)) << "stream ended early";
    json::Value data = json::Parse(event.data);
    ASSERT_EQ(data.At("request_id").AsString(), "check-42");
    if (event.name == "progress") {
      ++progress_events;
      const auto done = static_cast<std::uint64_t>(
          data.At("groups_done").AsNumber());
      EXPECT_GT(done, last_groups_done);  // strictly advancing
      last_groups_done = done;
      EXPECT_LE(done, static_cast<std::uint64_t>(
                          data.At("groups_total").AsNumber()));
      EXPECT_GE(data.At("states_explored").AsNumber(), 0.0);
      EXPECT_GE(data.At("store_memory_bytes").AsNumber(), 0.0);
    } else if (event.name == "verdict") {
      saw_verdict = true;
      EXPECT_EQ(data.At("verdict").AsString(), "violations");
      EXPECT_EQ(data.At("exit_code").AsInt(), 1);
      EXPECT_EQ(data.At("violations").AsInt(), 2);
      EXPECT_GT(data.At("states_explored").AsNumber(), 0.0);
      EXPECT_TRUE(data.At("completed").AsBool());
    }
  }
  // The §8 deployment splits into two related-set groups.
  EXPECT_GE(progress_events, 2u);
  EXPECT_EQ(last_groups_done, progress_events);
  subscriber.Close();
}

TEST_F(ServerTest, ConcurrentEventSubscribersBothReceiveTheVerdict) {
  StartServer();
  const int port = server_->port();

  SseClient first(port);
  SseClient second(port);
  ASSERT_TRUE(first.ReadHead());
  ASSERT_TRUE(second.ReadHead());

  ClientResponse check = Fetch(port, "POST", "/v1/check", CheckBody(),
                               "X-Request-Id: fanout-1\r\n");
  ASSERT_TRUE(check.complete);

  for (SseClient* subscriber : {&first, &second}) {
    bool saw_verdict = false;
    SseEvent event;
    while (!saw_verdict) {
      ASSERT_TRUE(subscriber->NextEvent(event));
      if (event.name != "verdict") continue;
      EXPECT_EQ(json::Parse(event.data).At("request_id").AsString(),
                "fanout-1");
      saw_verdict = true;
    }
  }
}

TEST_F(ServerTest, EventStreamDisconnectLeavesServerServing) {
  StartServer();
  const int port = server_->port();

  {
    SseClient dropper(port);
    ASSERT_TRUE(dropper.ReadHead());
  }  // closes the socket mid-stream

  // The stream thread notices the dead peer on its next idle tick and
  // unsubscribes; meanwhile the server keeps answering.
  ClientResponse check = Fetch(port, "POST", "/v1/check", CheckBody());
  ASSERT_TRUE(check.complete);
  EXPECT_EQ(check.status, 200);

  for (int i = 0; i < 50; ++i) {
    ClientResponse health = Fetch(port, "GET", "/v1/health");
    ASSERT_TRUE(health.complete);
    if (json::Parse(health.body).At("event_subscribers").AsInt() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ClientResponse health = Fetch(port, "GET", "/v1/health");
  ASSERT_TRUE(health.complete);
  EXPECT_EQ(json::Parse(health.body).At("event_subscribers").AsInt(), 0);
}

TEST_F(ServerTest, AccessLogRotatesOnReopen) {
  const std::string log_dir = TempDir("rotate");
  const std::string log_path = log_dir + "/access.jsonl";
  ServerConfig config;
  config.access_log_path = log_path;
  StartServer(std::move(config));
  const int port = server_->port();

  ASSERT_TRUE(Fetch(port, "GET", "/v1/health", "",
                    "X-Request-Id: before-rotate\r\n")
                  .complete);

  // The operator's logrotate move-then-SIGHUP dance: rename the live
  // file, then ask the server to reopen its path.
  const std::string rotated = log_dir + "/access.jsonl.1";
  std::filesystem::rename(log_path, rotated);
  server_->RotateAccessLog();

  ASSERT_TRUE(Fetch(port, "GET", "/v1/health", "",
                    "X-Request-Id: after-rotate\r\n")
                  .complete);
  server_->Stop();

  auto ids_in = [](const std::string& path) {
    std::set<std::string> ids;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) ids.insert(json::Parse(line).At("id").AsString());
    }
    return ids;
  };
  EXPECT_TRUE(ids_in(rotated).count("before-rotate"));
  EXPECT_FALSE(ids_in(rotated).count("after-rotate"));
  EXPECT_TRUE(ids_in(log_path).count("after-rotate"));
  std::filesystem::remove_all(log_dir);
}

}  // namespace
}  // namespace iotsan::server
