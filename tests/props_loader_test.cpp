// User-defined property loading tests (paper §3/§8).
#include <gtest/gtest.h>

#include "config/builder.hpp"
#include "core/sanitizer.hpp"
#include "props/loader.hpp"
#include "util/error.hpp"

namespace iotsan::props {
namespace {

TEST(PropsLoaderTest, LoadsValidProperties) {
  auto properties = LoadPropertiesJson(R"JSON([
    {"id": "U1", "category": "User",
     "description": "the heater is never on at night",
     "expression": "!(mode == \"Night\" && any(\"heaterOutlet\", \"switch\") == \"on\")"},
    {"id": "U2", "description": "lock stays locked",
     "expression": "!(any(\"mainDoorLock\", \"lock\") == \"unlocked\")"}
  ])JSON");
  ASSERT_EQ(properties.size(), 2u);
  EXPECT_EQ(properties[0].id, "U1");
  EXPECT_EQ(properties[0].kind, PropertyKind::kInvariant);
  EXPECT_EQ(properties[0].roles,
            (std::vector<std::string>{"heaterOutlet"}));
  EXPECT_EQ(properties[1].category, "User");  // default
  EXPECT_EQ(properties[1].description, "lock stays locked");
}

TEST(PropsLoaderTest, RejectsMissingFields) {
  EXPECT_THROW(LoadPropertiesJson(R"([{"id": "U1"}])"), SemanticError);
  EXPECT_THROW(LoadPropertiesJson(R"([{"expression": "mode == \"x\""}])"),
               SemanticError);
}

TEST(PropsLoaderTest, RejectsDuplicateAndBuiltinIds) {
  EXPECT_THROW(LoadPropertiesJson(R"([
    {"id": "U1", "expression": "mode == \"Home\""},
    {"id": "U1", "expression": "mode == \"Away\""}])"),
               SemanticError);
  EXPECT_THROW(LoadPropertiesJson(
                   R"([{"id": "P06", "expression": "mode == \"Home\""}])"),
               SemanticError);
}

TEST(PropsLoaderTest, RejectsUnparseableExpressions) {
  EXPECT_THROW(LoadPropertiesJson(
                   R"([{"id": "U1", "expression": "mode == ("}])"),
               Error);
}

TEST(PropsLoaderTest, RejectsNonArrayDocuments) {
  EXPECT_THROW(LoadPropertiesJson(R"({"id": "U1"})"), Error);
  EXPECT_THROW(LoadPropertiesJson("not json"), ParseError);
}

TEST(PropsLoaderTest, LoadedPropertiesDriveTheChecker) {
  config::DeploymentBuilder b("h");
  b.Device("m1", "motionSensor", {"watchedMotion"});
  b.Device("sw", "smartSwitch", {"watchedLight"});
  b.App("Brighten My Path")
      .Devices("motion1", {"m1"})
      .Devices("switches", {"sw"});
  core::Sanitizer sanitizer(b.Build());
  core::SanitizerOptions options;
  options.check.max_events = 2;
  options.extra_properties = LoadPropertiesJson(R"JSON([
    {"id": "U9", "description": "watched light stays off",
     "expression": "!(any(\"watchedLight\", \"switch\") == \"on\")"}
  ])JSON");
  EXPECT_TRUE(sanitizer.Check(options).HasViolation("U9"));
}

}  // namespace
}  // namespace iotsan::props
