// Golden-value tests for the util/hash FNV-1a infrastructure and the
// cache fingerprints built on it (src/cache/fingerprint).  The pinned
// constants are the independently computed FNV-1a 64 reference values —
// if any of them moves, every on-disk cache entry and artifact
// fingerprint silently invalidates, so a failure here is a compat break,
// not a test to update casually.
#include <gtest/gtest.h>

#include "cache/fingerprint.hpp"
#include "checker/checker.hpp"
#include "config/builder.hpp"
#include "props/property.hpp"
#include "util/hash.hpp"

namespace iotsan {
namespace {

// ---- Fnv1a64 golden values ---------------------------------------------------

TEST(HashGoldenTest, Fnv1a64ReferenceVectors) {
  EXPECT_EQ(hash::Fnv1a64(""), 0xcbf29ce484222325ULL);  // offset basis
  EXPECT_EQ(hash::Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hash::Fnv1a64("foobar"), 0x85944171f73967e8ULL);
  EXPECT_EQ(hash::Fnv1a64("hello"), 0xa430d84680aabd0bULL);
  EXPECT_EQ(hash::Fnv1a64("iotsan"), 0xfe4cbfaeec95dde3ULL);
}

TEST(HashGoldenTest, StreamStringsAreLengthDelimited) {
  // "ab"+"c" and "a"+"bc" concatenate to the same bytes; the length
  // prefix must keep their digests apart.
  hash::Fnv1a64Stream ab_c;
  ab_c.Mix(std::string_view("ab")).Mix(std::string_view("c"));
  hash::Fnv1a64Stream a_bc;
  a_bc.Mix(std::string_view("a")).Mix(std::string_view("bc"));
  EXPECT_EQ(ab_c.digest(), 0x7e60470bf599cad6ULL);
  EXPECT_EQ(a_bc.digest(), 0xba1e1f0e0704d8eaULL);
  EXPECT_NE(ab_c.digest(), a_bc.digest());
}

TEST(HashGoldenTest, StreamIntegerAndDoubleEncodings) {
  hash::Fnv1a64Stream ints;
  ints.Mix(std::uint64_t{42});  // 8 little-endian bytes
  EXPECT_EQ(ints.digest(), 0xff3add6b3789daefULL);
  hash::Fnv1a64Stream doubles;
  doubles.Mix(1.5);  // IEEE-754 bit pattern, little endian
  EXPECT_EQ(doubles.digest(), 0xaa95e93229a27c80ULL);
}

TEST(HashGoldenTest, StreamCanonicalizesNegativeZero) {
  hash::Fnv1a64Stream pos;
  pos.Mix(0.0);
  hash::Fnv1a64Stream neg;
  neg.Mix(-0.0);
  EXPECT_EQ(pos.digest(), neg.digest());
}

TEST(HashGoldenTest, HexIsSixteenLowercaseDigits) {
  hash::Fnv1a64Stream stream;  // empty stream = offset basis
  EXPECT_EQ(stream.Hex(), "cbf29ce484222325");
}

// ---- Group-key fingerprints --------------------------------------------------

config::Deployment TinyDeployment() {
  config::DeploymentBuilder b("h");
  b.Device("m1", "motionSensor");
  b.Device("sw", "smartSwitch", {"light"});
  b.App("Brighten My Path").Devices("motion1", {"m1"}).Devices("switches",
                                                               {"sw"});
  return b.Build();
}

cache::GroupKeyInputs TinyInputs(const config::Deployment& deployment,
                                 const std::vector<props::Property>& props,
                                 const checker::CheckOptions& check,
                                 const model::ModelOptions& model) {
  cache::GroupKeyInputs inputs;
  inputs.deployment = &deployment;
  inputs.sources.emplace_back("Brighten My Path", "def h(evt) {}");
  inputs.properties = &props;
  inputs.check = &check;
  inputs.model = &model;
  inputs.version = "test-1";
  return inputs;
}

TEST(GroupKeyTest, DeterministicAcrossCalls) {
  const config::Deployment deployment = TinyDeployment();
  const std::vector<props::Property> props = props::BuiltinProperties();
  const checker::CheckOptions check;
  const model::ModelOptions model;
  cache::GroupKey a =
      cache::MakeGroupKey(TinyInputs(deployment, props, check, model));
  cache::GroupKey b =
      cache::MakeGroupKey(TinyInputs(deployment, props, check, model));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.Hex().size(), 16u);
  EXPECT_EQ(a.digest, hash::Fnv1a64(a.text));
}

TEST(GroupKeyTest, SourceEditChangesKey) {
  const config::Deployment deployment = TinyDeployment();
  const std::vector<props::Property> props = props::BuiltinProperties();
  const checker::CheckOptions check;
  const model::ModelOptions model;
  cache::GroupKeyInputs inputs = TinyInputs(deployment, props, check, model);
  const cache::GroupKey before = cache::MakeGroupKey(inputs);
  inputs.sources[0].second = "def h(evt) { sw.on() }";
  const cache::GroupKey after = cache::MakeGroupKey(inputs);
  EXPECT_NE(before.digest, after.digest);
}

TEST(GroupKeyTest, JobsDoNotAffectKey) {
  const config::Deployment deployment = TinyDeployment();
  const std::vector<props::Property> props = props::BuiltinProperties();
  const model::ModelOptions model;
  checker::CheckOptions serial;
  serial.jobs = 1;
  checker::CheckOptions parallel;
  parallel.jobs = 8;
  const cache::GroupKey a =
      cache::MakeGroupKey(TinyInputs(deployment, props, serial, model));
  const cache::GroupKey b =
      cache::MakeGroupKey(TinyInputs(deployment, props, parallel, model));
  EXPECT_EQ(a.digest, b.digest) << "the key must be --jobs independent";
}

TEST(GroupKeyTest, CheckOptionsThatMatterChangeKey) {
  const config::Deployment deployment = TinyDeployment();
  const std::vector<props::Property> props = props::BuiltinProperties();
  const model::ModelOptions model;
  checker::CheckOptions base;
  const cache::GroupKey key_base =
      cache::MakeGroupKey(TinyInputs(deployment, props, base, model));
  checker::CheckOptions deeper = base;
  deeper.max_events = base.max_events + 1;
  EXPECT_NE(
      cache::MakeGroupKey(TinyInputs(deployment, props, deeper, model)).digest,
      key_base.digest);
  checker::CheckOptions failures = base;
  failures.model_failures = true;
  EXPECT_NE(cache::MakeGroupKey(TinyInputs(deployment, props, failures, model))
                .digest,
            key_base.digest);
  checker::CheckOptions bitstate = base;
  bitstate.store = checker::StoreKind::kBitstate;
  EXPECT_NE(cache::MakeGroupKey(TinyInputs(deployment, props, bitstate, model))
                .digest,
            key_base.digest);
}

TEST(GroupKeyTest, VersionChangesKey) {
  const config::Deployment deployment = TinyDeployment();
  const std::vector<props::Property> props = props::BuiltinProperties();
  const checker::CheckOptions check;
  const model::ModelOptions model;
  cache::GroupKeyInputs inputs = TinyInputs(deployment, props, check, model);
  const cache::GroupKey v1 = cache::MakeGroupKey(inputs);
  inputs.version = "test-2";
  const cache::GroupKey v2 = cache::MakeGroupKey(inputs);
  EXPECT_NE(v1.digest, v2.digest);
}

TEST(GroupKeyTest, PropertySetFingerprintTracksContent) {
  std::vector<props::Property> props;
  props.push_back(props::MakeInvariant("U1", "User", "light stays off",
                                       R"(!(any("light", "switch") == "on"))"));
  const std::uint64_t before = cache::PropertySetFingerprint(props);
  props[0].description = "edited";
  EXPECT_NE(cache::PropertySetFingerprint(props), before);
}

}  // namespace
}  // namespace iotsan
