#include <gtest/gtest.h>

#include "dsl/lexer.hpp"
#include "util/error.hpp"

namespace iotsan::dsl {
namespace {

std::vector<TokenKind> Kinds(std::string_view source) {
  std::vector<TokenKind> kinds;
  for (const Token& t : Tokenize(source)) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Tokenize("def foo if else return while for in");
  EXPECT_EQ(tokens[0].kind, TokenKind::kDef);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].kind, TokenKind::kIf);
  EXPECT_EQ(tokens[3].kind, TokenKind::kElse);
  EXPECT_EQ(tokens[4].kind, TokenKind::kReturn);
  EXPECT_EQ(tokens[5].kind, TokenKind::kWhile);
  EXPECT_EQ(tokens[6].kind, TokenKind::kFor);
  EXPECT_EQ(tokens[7].kind, TokenKind::kIn);
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("42 2.5 0");
  EXPECT_DOUBLE_EQ(tokens[0].number, 42);
  EXPECT_FALSE(tokens[0].is_decimal);
  EXPECT_DOUBLE_EQ(tokens[1].number, 2.5);
  EXPECT_TRUE(tokens[1].is_decimal);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0);
}

TEST(LexerTest, DotAfterNumberIsMemberAccessUnlessDigitFollows) {
  auto tokens = Tokenize("5.toString");
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, Strings) {
  auto tokens = Tokenize(R"("double" 'single' "es\"c\n")");
  EXPECT_EQ(tokens[0].text, "double");
  EXPECT_EQ(tokens[1].text, "single");
  EXPECT_EQ(tokens[2].text, "es\"c\n");
}

TEST(LexerTest, OperatorDisambiguation) {
  EXPECT_EQ(Kinds("== = != ! <= < >= > && || ?. ?: ? -> - += + -="),
            (std::vector<TokenKind>{
                TokenKind::kEq, TokenKind::kAssign, TokenKind::kNe,
                TokenKind::kNot, TokenKind::kLe, TokenKind::kLt,
                TokenKind::kGe, TokenKind::kGt, TokenKind::kAndAnd,
                TokenKind::kOrOr, TokenKind::kSafeDot, TokenKind::kElvis,
                TokenKind::kQuestion, TokenKind::kArrow, TokenKind::kMinus,
                TokenKind::kPlusAssign, TokenKind::kPlus,
                TokenKind::kMinusAssign, TokenKind::kEnd}));
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(tokens.size(), 4u);  // a b c end
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = Tokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, StartsLineFlag) {
  auto tokens = Tokenize("a b\nc");
  EXPECT_TRUE(tokens[0].starts_line);
  EXPECT_FALSE(tokens[1].starts_line);
  EXPECT_TRUE(tokens[2].starts_line);
}

TEST(LexerTest, ErrorsIncludeSourceName) {
  try {
    Tokenize("\"unterminated", "myapp.groovy");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("myapp.groovy"), std::string::npos);
  }
}

TEST(LexerTest, RejectsMalformed) {
  EXPECT_THROW(Tokenize("a & b"), ParseError);
  EXPECT_THROW(Tokenize("a | b"), ParseError);
  EXPECT_THROW(Tokenize("'\n'"), ParseError);
  EXPECT_THROW(Tokenize("\"bad \\q\""), ParseError);
  EXPECT_THROW(Tokenize("/* open"), ParseError);
  EXPECT_THROW(Tokenize("#"), ParseError);
}

TEST(LexerTest, DollarAllowedInIdentifiers) {
  auto tokens = Tokenize("$var");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "$var");
}

}  // namespace
}  // namespace iotsan::dsl
