// Cascade-engine tests: Algorithm 1's event loop — external-event
// injection, queue draining, sequential vs concurrent scheduling, timers,
// and the failure model's cyber/physical split (§8).
#include <gtest/gtest.h>

#include "config/builder.hpp"
#include "ir/analyzer.hpp"
#include "model/engine.hpp"

namespace iotsan::model {
namespace {

constexpr const char* kChainApp = R"(
definition(name: "Chain", namespace: "t")
preferences {
    section("S") {
        input "p1", "capability.presenceSensor"
        input "lock1", "capability.lock"
        input "awayMode", "mode"
    }
}
def installed() {
    subscribe(p1, "presence.notpresent", left)
    subscribe(location, "mode", modeChanged)
}
def left(evt) {
    setLocationMode(awayMode)
}
def modeChanged(evt) {
    lock1.unlock()
}
)";

SystemModel ChainModel() {
  config::DeploymentBuilder b("chain home");
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("Chain")
      .Devices("p1", {"p1"})
      .Devices("lock1", {"lock1"})
      .Text("awayMode", "Away");
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kChainApp, "Chain"));
  return SystemModel(b.Build(), std::move(apps));
}

ExternalEvent PresenceLeaves(const SystemModel& model) {
  ExternalEvent event;
  event.kind = ExternalEventSpec::Kind::kSensor;
  event.device = model.DeviceIndex("p1");
  event.attribute = model.devices()[event.device].AttributeIndex("presence");
  event.value = 1;  // notpresent
  return event;
}

TEST(EngineTest, SequentialCascadeDrainsChain) {
  SystemModel model = ChainModel();
  CascadeEngine engine(model);
  SystemState initial = model.MakeInitialState();

  auto outcomes = engine.Apply(initial, PresenceLeaves(model),
                               FailureScenario{}, Scheduling::kSequential);
  ASSERT_EQ(outcomes.size(), 1u);
  const SystemState& after = outcomes[0].state;
  // The full chain ran: presence away -> mode Away -> lock unlocked.
  EXPECT_EQ(after.mode, 1);
  const int lock = model.DeviceIndex("lock1");
  const int lock_attr = model.devices()[lock].AttributeIndex("lock");
  EXPECT_EQ(after.devices[lock].values[lock_attr], 1);  // unlocked
  EXPECT_EQ(outcomes[0].log.commands.size(), 1u);
  EXPECT_FALSE(outcomes[0].log.truncated);
}

TEST(EngineTest, SensorOfflineSplitsPhysicalAndCyber) {
  SystemModel model = ChainModel();
  CascadeEngine engine(model);
  SystemState initial = model.MakeInitialState();

  FailureScenario failure;
  failure.sensor_offline = true;
  auto outcomes = engine.Apply(initial, PresenceLeaves(model), failure,
                               Scheduling::kSequential);
  ASSERT_EQ(outcomes.size(), 1u);
  const SystemState& after = outcomes[0].state;
  const int p1 = model.DeviceIndex("p1");
  const int attr = model.devices()[p1].AttributeIndex("presence");
  // Physical truth changed; the cyber reading is stale; nothing ran.
  EXPECT_EQ(after.devices[p1].physical[attr], 1);
  EXPECT_EQ(after.devices[p1].values[attr], 0);
  EXPECT_EQ(after.mode, 0);
  EXPECT_TRUE(outcomes[0].log.commands.empty());
}

TEST(EngineTest, ActuatorOfflineLosesCommand) {
  SystemModel model = ChainModel();
  CascadeEngine engine(model);
  SystemState initial = model.MakeInitialState();

  FailureScenario failure;
  failure.actuator_offline = true;
  auto outcomes = engine.Apply(initial, PresenceLeaves(model), failure,
                               Scheduling::kSequential);
  const SystemState& after = outcomes[0].state;
  const int lock = model.DeviceIndex("lock1");
  const int lock_attr = model.devices()[lock].AttributeIndex("lock");
  EXPECT_EQ(after.devices[lock].values[lock_attr], 0);  // still locked
  EXPECT_EQ(outcomes[0].log.failed_deliveries, 1);
}

TEST(EngineTest, EnabledEventsSkipNoOps) {
  SystemModel model = ChainModel();
  CascadeEngine engine(model);
  SystemState state = model.MakeInitialState();
  // presence is the only observed sensor; current=present, so the single
  // enabled sensor event is notpresent.
  auto events = engine.EnabledEvents(state);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].value, 1);
  // After it fires, only the reverse transition is enabled.
  state.devices[model.DeviceIndex("p1")].physical[0] = 1;
  state.devices[model.DeviceIndex("p1")].values[0] = 1;
  events = engine.EnabledEvents(state);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].value, 0);
}

TEST(EngineTest, DescribeRendersEvents) {
  SystemModel model = ChainModel();
  EXPECT_EQ(PresenceLeaves(model).Describe(model),
            "p1: presence/notpresent");
}

// ---- Timers -----------------------------------------------------------------

constexpr const char* kTimerApp = R"(
definition(name: "Timed", namespace: "t")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "sw", "capability.switch"
    }
}
def installed() {
    subscribe(m1, "motion.inactive", quietHandler)
}
def quietHandler(evt) {
    runIn(60, turnOff)
}
def turnOff() {
    sw.off()
}
)";

TEST(EngineTest, TimerLifecycle) {
  config::DeploymentBuilder b("timer home");
  b.Device("m1", "motionSensor");
  b.Device("sw", "smartSwitch");
  b.App("Timed").Devices("m1", {"m1"}).Devices("sw", {"sw"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kTimerApp, "Timed"));
  SystemModel model(b.Build(), std::move(apps));
  CascadeEngine engine(model);
  SystemState state = model.MakeInitialState();

  // No timers pending, no recurring schedules: the tick is disabled.
  for (const ExternalEvent& e : engine.EnabledEvents(state)) {
    EXPECT_NE(e.kind, ExternalEventSpec::Kind::kTimerTick);
  }

  // motion active then inactive arms the runIn timer.
  ExternalEvent active;
  active.kind = ExternalEventSpec::Kind::kSensor;
  active.device = model.DeviceIndex("m1");
  active.attribute = 0;
  active.value = 1;
  state = engine.Apply(state, active, {}, Scheduling::kSequential)[0].state;
  ExternalEvent inactive = active;
  inactive.value = 0;
  state =
      engine.Apply(state, inactive, {}, Scheduling::kSequential)[0].state;
  ASSERT_EQ(state.timers.size(), 1u);

  // The tick is now enabled; firing it runs turnOff and clears the timer.
  bool tick_enabled = false;
  for (const ExternalEvent& e : engine.EnabledEvents(state)) {
    tick_enabled |= e.kind == ExternalEventSpec::Kind::kTimerTick;
  }
  EXPECT_TRUE(tick_enabled);
  ExternalEvent tick;
  tick.kind = ExternalEventSpec::Kind::kTimerTick;
  auto outcomes = engine.Apply(state, tick, {}, Scheduling::kSequential);
  EXPECT_TRUE(outcomes[0].state.timers.empty());
  EXPECT_EQ(outcomes[0].log.commands.size(), 1u);
}

// ---- Concurrent scheduling ---------------------------------------------------

constexpr const char* kFanoutApp = R"(
definition(name: "Fanout", namespace: "t")
preferences {
    section("S") {
        input "c1", "capability.contactSensor"
        input "sw", "capability.switch", multiple: true
    }
}
def installed() {
    subscribe(c1, "contact.open", openHandler)
}
def openHandler(evt) {
    sw.on()
}
)";

TEST(EngineTest, ConcurrentExploresInterleavings) {
  config::DeploymentBuilder b("fanout home");
  b.Device("c1", "contactSensor");
  b.Device("s1", "smartSwitch");
  b.Device("s2", "smartSwitch");
  b.Device("s3", "smartSwitch");
  b.App("Fanout").Devices("c1", {"c1"}).Devices("sw", {"s1", "s2", "s3"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kFanoutApp, "Fanout"));
  SystemModel model(b.Build(), std::move(apps));
  CascadeEngine engine(model);
  SystemState initial = model.MakeInitialState();

  ExternalEvent open;
  open.kind = ExternalEventSpec::Kind::kSensor;
  open.device = model.DeviceIndex("c1");
  open.attribute = 0;
  open.value = 1;

  auto sequential =
      engine.Apply(initial, open, {}, Scheduling::kSequential);
  EXPECT_EQ(sequential.size(), 1u);

  // Three switch-on events are pending after the handler; nobody consumes
  // them, so the orders of their (no-op) dispatches multiply: 3! = 6.
  auto concurrent =
      engine.Apply(initial, open, {}, Scheduling::kConcurrent);
  EXPECT_EQ(concurrent.size(), 6u);
  // All interleavings converge on the same final device state here.
  for (const StepOutcome& outcome : concurrent) {
    EXPECT_EQ(outcome.state.devices, sequential[0].state.devices);
  }
}

TEST(EngineTest, UserModeChangeEvents) {
  config::DeploymentBuilder b("mode home");
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("Chain")
      .Devices("p1", {"p1"})
      .Devices("lock1", {"lock1"})
      .Text("awayMode", "Away");
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kChainApp, "Chain"));
  ModelOptions options;
  options.user_mode_events = true;
  SystemModel model(b.Build(), std::move(apps), options);
  CascadeEngine engine(model);
  SystemState state = model.MakeInitialState();

  int mode_events = 0;
  for (const ExternalEvent& e : engine.EnabledEvents(state)) {
    if (e.kind == ExternalEventSpec::Kind::kUserModeChange) ++mode_events;
  }
  EXPECT_EQ(mode_events, 2);  // Away, Night (not the current Home)

  ExternalEvent to_away;
  to_away.kind = ExternalEventSpec::Kind::kUserModeChange;
  to_away.value = 1;
  auto outcomes = engine.Apply(state, to_away, {}, Scheduling::kSequential);
  EXPECT_EQ(outcomes[0].state.mode, 1);
  // Chain's modeChanged handler fired and unlocked the lock.
  EXPECT_EQ(outcomes[0].log.commands.size(), 1u);
}

TEST(EngineTest, CascadeBoundStopsPingPong) {
  // Two apps toggling the same switch forever must be cut off.
  const char* ping = R"(
definition(name: "Ping", namespace: "t")
preferences { section("S") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) { sw.off() }
)";
  const char* pong = R"(
definition(name: "Pong", namespace: "t")
preferences { section("S") { input "sw", "capability.switch" } }
def installed() { subscribe(sw, "switch.off", h) }
def h(evt) { sw.on() }
)";
  const char* kick = R"(
definition(name: "Kick", namespace: "t")
preferences { section("S") {
    input "m1", "capability.motionSensor"
    input "sw", "capability.switch" } }
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { sw.on() }
)";
  config::DeploymentBuilder b("pingpong home");
  b.Device("sw", "smartSwitch");
  b.Device("m1", "motionSensor");
  b.App("Ping").Devices("sw", {"sw"});
  b.App("Pong").Devices("sw", {"sw"});
  b.App("Kick").Devices("m1", {"m1"}).Devices("sw", {"sw"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(ping, "Ping"));
  apps.push_back(ir::AnalyzeSource(pong, "Pong"));
  apps.push_back(ir::AnalyzeSource(kick, "Kick"));
  SystemModel model(b.Build(), std::move(apps));
  CascadeEngine engine(model);

  ExternalEvent active;
  active.kind = ExternalEventSpec::Kind::kSensor;
  active.device = model.DeviceIndex("m1");
  active.attribute = 0;
  active.value = 1;
  auto outcomes = engine.Apply(model.MakeInitialState(), active, {},
                               Scheduling::kSequential);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].log.truncated);
}

}  // namespace
}  // namespace iotsan::model
