// End-to-end pipeline tests: the paper's §8 running example (Fig. 7) and
// related multi-app interaction scenarios.
#include <gtest/gtest.h>

#include "checker/checker.hpp"
#include "core/sanitizer.hpp"

namespace iotsan {
namespace {

/// The §8 example: Alice's presence sensor + smart lock, with Auto Mode
/// Change and Unlock Door installed.  The checker must find the unsafe
/// state "main door unlocked when no one is at home" (P06).
config::Deployment Fig7Deployment() {
  return config::ParseDeploymentText(R"JSON({
    "name": "alice's home",
    "devices": [
      {"id": "alicePresence", "type": "presenceSensor", "roles": ["presence"]},
      {"id": "doorLock", "type": "smartLock", "roles": ["mainDoorLock"]}
    ],
    "apps": [
      {"app": "Auto Mode Change",
       "inputs": {"people": ["alicePresence"],
                  "homeMode": "Home", "awayMode": "Away"}},
      {"app": "Unlock Door", "inputs": {"lock1": ["doorLock"]}}
    ]
  })JSON");
}

TEST(PipelineTest, Fig7ViolationFound) {
  core::Sanitizer sanitizer(Fig7Deployment());
  core::SanitizerOptions options;
  options.check.max_events = 2;
  core::SanitizerReport report = sanitizer.Check(options);

  ASSERT_TRUE(report.rejected_apps.empty())
      << report.rejected_apps.front();
  EXPECT_TRUE(report.HasViolation("P06"))
      << "expected 'main door unlocked when no one home' violation";
}

TEST(PipelineTest, Fig7CounterExampleMentionsTheChain) {
  core::Sanitizer sanitizer(Fig7Deployment());
  core::SanitizerOptions options;
  options.check.max_events = 2;
  core::SanitizerReport report = sanitizer.Check(options);

  bool found = false;
  for (const checker::Violation& v : report.violations) {
    if (v.property_id != "P06") continue;
    found = true;
    const std::string trace = [&v] {
      std::string joined;
      for (const std::string& line : v.TraceLines()) joined += line + "\n";
      return joined;
    }();
    // The chain of Fig. 7: notpresent event -> Auto Mode Change -> mode
    // Away -> Unlock Door -> unlock command.
    EXPECT_NE(trace.find("notpresent"), std::string::npos) << trace;
    EXPECT_NE(trace.find("Auto Mode Change"), std::string::npos) << trace;
    EXPECT_NE(trace.find("location.mode = Away"), std::string::npos) << trace;
    EXPECT_NE(trace.find("Unlock Door"), std::string::npos) << trace;
    EXPECT_NE(trace.find("unlock"), std::string::npos) << trace;
  }
  EXPECT_TRUE(found);
}

TEST(PipelineTest, SafeSystemHasNoViolations) {
  // Lock It When I Leave keeps the door locked; no unlocking app.
  config::Deployment deployment = config::ParseDeploymentText(R"JSON({
    "name": "safe home",
    "devices": [
      {"id": "alicePresence", "type": "presenceSensor", "roles": ["presence"]},
      {"id": "doorLock", "type": "smartLock", "roles": ["mainDoorLock"]}
    ],
    "apps": [
      {"app": "Lock It When I Leave",
       "inputs": {"people": ["alicePresence"], "locks": ["doorLock"]}}
    ]
  })JSON");
  core::Sanitizer sanitizer(deployment);
  core::SanitizerOptions options;
  options.check.max_events = 3;
  core::SanitizerReport report = sanitizer.Check(options);
  EXPECT_FALSE(report.HasViolation("P06"));
}

TEST(PipelineTest, ConflictingCommandsDetected) {
  // Brighten Dark Places (open -> on) vs Let There Be Dark! (open -> off)
  // on the same light: paper Table 5's conflicting-commands example.
  config::Deployment deployment = config::ParseDeploymentText(R"JSON({
    "name": "conflict home",
    "devices": [
      {"id": "frontDoor", "type": "contactSensor", "roles": ["frontDoorContact"]},
      {"id": "lightMeter", "type": "illuminanceSensor"},
      {"id": "hallLight", "type": "smartSwitch", "roles": ["light"]}
    ],
    "apps": [
      {"app": "Brighten Dark Places",
       "inputs": {"contact1": ["frontDoor"], "luminance1": ["lightMeter"],
                  "switches": ["hallLight"]}},
      {"app": "Let There Be Dark!",
       "inputs": {"contact1": ["frontDoor"], "switches": ["hallLight"]}}
    ]
  })JSON");
  core::Sanitizer sanitizer(deployment);
  core::SanitizerOptions options;
  options.check.max_events = 2;
  core::SanitizerReport report = sanitizer.Check(options);
  EXPECT_TRUE(report.HasViolation("P39")) << "conflicting commands expected";
}

TEST(PipelineTest, RepeatedCommandsDetected) {
  // Brighten My Path + Automated Light both turn the same light on for
  // the same motion event (paper Table 5's repeated-commands example).
  config::Deployment deployment = config::ParseDeploymentText(R"JSON({
    "name": "repeat home",
    "devices": [
      {"id": "hallMotion", "type": "motionSensor"},
      {"id": "hallLight", "type": "smartSwitch", "roles": ["light"]}
    ],
    "apps": [
      {"app": "Brighten My Path",
       "inputs": {"motion1": ["hallMotion"], "switches": ["hallLight"]}},
      {"app": "Automated Light",
       "inputs": {"motionSensor": ["hallMotion"], "lights": ["hallLight"]}}
    ]
  })JSON");
  core::Sanitizer sanitizer(deployment);
  core::SanitizerOptions options;
  options.check.max_events = 2;
  core::SanitizerReport report = sanitizer.Check(options);
  EXPECT_TRUE(report.HasViolation("P40")) << "repeated commands expected";
}

TEST(PipelineTest, DynamicDiscoveryAppsAreRejected) {
  config::Deployment deployment = config::ParseDeploymentText(R"JSON({
    "name": "discovery home",
    "devices": [
      {"id": "cam", "type": "camera", "roles": ["camera"]}
    ],
    "apps": [
      {"app": "Midnight Camera", "inputs": {}}
    ]
  })JSON");
  core::Sanitizer sanitizer(deployment);
  core::SanitizerReport report = sanitizer.Check();
  ASSERT_EQ(report.rejected_apps.size(), 1u);
  EXPECT_NE(report.rejected_apps[0].find("dynamic device discovery"),
            std::string::npos);
}

TEST(PipelineTest, DeviceFailureCausesViolation) {
  // Paper Fig. 8b: with failures modeled, a failed presence sensor means
  // Lock It When I Leave never fires -> robustness/lock violations appear
  // only in failure scenarios.  Unlock Door's mode-change unlock plus a
  // lost lock command shows P45 (no notification of failure).
  config::Deployment deployment = config::ParseDeploymentText(R"JSON({
    "name": "failure home",
    "devices": [
      {"id": "alicePresence", "type": "presenceSensor", "roles": ["presence"]},
      {"id": "doorLock", "type": "smartLock", "roles": ["mainDoorLock"]}
    ],
    "apps": [
      {"app": "Unlock Door", "inputs": {"lock1": ["doorLock"]}},
      {"app": "Auto Mode Change",
       "inputs": {"people": ["alicePresence"], "homeMode": "Home", "awayMode": "Away"}}
    ]
  })JSON");
  core::Sanitizer sanitizer(deployment);
  core::SanitizerOptions options;
  options.check.max_events = 2;
  options.check.model_failures = true;
  core::SanitizerReport report = sanitizer.Check(options);
  EXPECT_TRUE(report.HasViolation("P45"))
      << "expected robustness violation under failure scenarios";
}

}  // namespace
}  // namespace iotsan
