// Deployment configuration tests (the Configuration Extractor's output,
// paper §7).
#include <gtest/gtest.h>

#include "config/builder.hpp"
#include "config/deployment.hpp"
#include "util/error.hpp"

namespace iotsan::config {
namespace {

constexpr const char* kDoc = R"JSON({
  "name": "test home",
  "modes": ["Home", "Away", "Night"],
  "contactPhone": "555-0100",
  "allowNetworkInterfaces": false,
  "devices": [
    {"id": "lock1", "type": "smartLock", "roles": ["mainDoorLock"]},
    {"id": "p1", "type": "presenceSensor", "roles": ["presence"]},
    {"id": "sw1", "type": "smartSwitch"}
  ],
  "apps": [
    {"app": "Unlock Door", "inputs": {"lock1": ["lock1"]}},
    {"app": "It's Too Cold", "label": "basement",
     "inputs": {"temperature1": 65, "phone": "555-0100",
                "enabled": true}}
  ]
})JSON";

TEST(DeploymentParseTest, FullDocument) {
  Deployment d = ParseDeploymentText(kDoc);
  EXPECT_EQ(d.name, "test home");
  EXPECT_EQ(d.modes, (std::vector<std::string>{"Home", "Away", "Night"}));
  EXPECT_EQ(d.contact_phone, "555-0100");
  EXPECT_FALSE(d.allow_network_interfaces);
  ASSERT_EQ(d.devices.size(), 3u);
  EXPECT_EQ(d.devices[0].roles, (std::vector<std::string>{"mainDoorLock"}));
  ASSERT_EQ(d.apps.size(), 2u);
  EXPECT_EQ(d.apps[0].label, "Unlock Door");  // defaults to app name
  EXPECT_EQ(d.apps[1].label, "basement");
}

TEST(DeploymentParseTest, BindingAlternatives) {
  Deployment d = ParseDeploymentText(kDoc);
  const AppConfig& app = d.apps[1];
  EXPECT_TRUE(app.inputs.at("temperature1").number.has_value());
  EXPECT_DOUBLE_EQ(*app.inputs.at("temperature1").number, 65);
  EXPECT_EQ(*app.inputs.at("phone").text, "555-0100");
  EXPECT_TRUE(*app.inputs.at("enabled").flag);
  EXPECT_TRUE(d.apps[0].inputs.at("lock1").IsDeviceBinding());
}

TEST(DeploymentParseTest, Lookups) {
  Deployment d = ParseDeploymentText(kDoc);
  EXPECT_NE(d.FindDevice("lock1"), nullptr);
  EXPECT_EQ(d.FindDevice("nope"), nullptr);
  EXPECT_EQ(d.DevicesWithRole("presence"),
            (std::vector<std::string>{"p1"}));
  EXPECT_TRUE(d.DevicesWithRole("garageDoor").empty());
  EXPECT_EQ(d.ModeIndex("Away"), 1);
  EXPECT_EQ(d.ModeIndex("Vacation"), -1);
}

TEST(DeploymentParseTest, DefaultModes) {
  Deployment d = ParseDeploymentText(R"({"name": "x"})");
  EXPECT_EQ(d.modes, (std::vector<std::string>{"Home", "Away", "Night"}));
}

TEST(DeploymentParseTest, RejectsUnknownDeviceType) {
  EXPECT_THROW(ParseDeploymentText(
                   R"({"devices": [{"id": "d", "type": "flyingCar"}]})"),
               ConfigError);
}

TEST(DeploymentParseTest, RejectsDuplicateDeviceIds) {
  EXPECT_THROW(
      ParseDeploymentText(R"({"devices": [
        {"id": "d", "type": "smartSwitch"},
        {"id": "d", "type": "smartLock"}]})"),
      ConfigError);
}

TEST(DeploymentParseTest, RejectsBindingToUnknownDevice) {
  EXPECT_THROW(ParseDeploymentText(R"({
    "devices": [{"id": "d", "type": "smartSwitch"}],
    "apps": [{"app": "A", "inputs": {"x": ["ghost"]}}]})"),
               ConfigError);
}

TEST(DeploymentParseTest, RejectsEmptyModes) {
  EXPECT_THROW(ParseDeploymentText(R"({"modes": []})"), ConfigError);
}

TEST(DeploymentParseTest, RejectsIncompleteEntries) {
  EXPECT_THROW(ParseDeploymentText(R"({"devices": [{"id": "d"}]})"),
               ConfigError);
  EXPECT_THROW(ParseDeploymentText(R"({"apps": [{"label": "x"}]})"),
               ConfigError);
}

TEST(DeploymentJsonTest, RoundTrip) {
  Deployment original = ParseDeploymentText(kDoc);
  Deployment reparsed = ParseDeployment(DeploymentToJson(original));
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.modes, original.modes);
  EXPECT_EQ(reparsed.devices.size(), original.devices.size());
  EXPECT_EQ(reparsed.apps.size(), original.apps.size());
  EXPECT_EQ(reparsed.apps[1].label, "basement");
  EXPECT_DOUBLE_EQ(*reparsed.apps[1].inputs.at("temperature1").number, 65);
}

TEST(DeploymentBuilderTest, BuildsEquivalentDeployment) {
  DeploymentBuilder b("built home");
  b.ContactPhone("555-0100");
  b.Modes({"Day", "Night"});
  b.AllowNetwork(true);
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("Unlock Door").Devices("lock1", {"lock1"});
  b.App("It's Too Cold", "basement")
      .Number("temperature1", 65)
      .Text("phone", "555-0100")
      .Flag("enabled", true);
  Deployment d = b.Build();
  EXPECT_EQ(d.name, "built home");
  EXPECT_EQ(d.modes, (std::vector<std::string>{"Day", "Night"}));
  EXPECT_TRUE(d.allow_network_interfaces);
  EXPECT_EQ(d.apps[1].label, "basement");
  EXPECT_DOUBLE_EQ(*d.apps[1].inputs.at("temperature1").number, 65);
  EXPECT_TRUE(*d.apps[1].inputs.at("enabled").flag);
}

}  // namespace
}  // namespace iotsan::config
