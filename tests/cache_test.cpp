// Incremental-analysis cache tests (src/cache): warm runs must be
// indistinguishable from cold ones, invalidation must be exact (only
// groups whose inputs changed re-verify), and the store must shrug off
// corruption and concurrent callers.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "cache/result_cache.hpp"
#include "config/builder.hpp"
#include "core/sanitizer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace iotsan {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSourceA = R"(
definition(name: "Cache App A", namespace: "t")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "sw", "capability.switch"
    }
}
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { sw.on() }
)";

constexpr const char* kSourceB = R"(
definition(name: "Cache App B", namespace: "t")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "sw", "capability.switch"
    }
}
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { sw.on() }
)";

/// A comment-only edit to app B: identical semantics (so the related-set
/// grouping is unchanged) but different source bytes, so only B's group
/// key moves.
constexpr const char* kSourceBEdited = R"(
// revision 2
definition(name: "Cache App B", namespace: "t")
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "sw", "capability.switch"
    }
}
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { sw.on() }
)";

/// Two apps over disjoint devices: dependency analysis yields two
/// related-set groups, so the cache sees two independent keys.
core::Sanitizer TwoGroupSanitizer(const std::string& source_b = kSourceB) {
  config::DeploymentBuilder b("cachehome");
  b.Device("m1", "motionSensor");
  b.Device("m2", "motionSensor");
  b.Device("sw1", "smartSwitch", {"light"});
  b.Device("sw2", "smartSwitch", {"light"});
  b.App("Cache App A").Devices("m1", {"m1"}).Devices("sw", {"sw1"});
  b.App("Cache App B").Devices("m1", {"m2"}).Devices("sw", {"sw2"});
  core::Sanitizer sanitizer(b.Build());
  sanitizer.AddAppSource("Cache App A", kSourceA);
  sanitizer.AddAppSource("Cache App B", source_b);
  return sanitizer;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "iotsan_cache_" + name;
  fs::remove_all(dir);
  return dir;
}

/// RAII telemetry registry: counters observable after each run.
struct ScopedRegistry {
  telemetry::Registry registry;
  ScopedRegistry() { telemetry::SetActive(&registry); }
  ~ScopedRegistry() { telemetry::SetActive(nullptr); }
};

void ExpectSameReport(const core::SanitizerReport& cold,
                      const core::SanitizerReport& warm) {
  EXPECT_EQ(cold.states_explored, warm.states_explored);
  EXPECT_EQ(cold.states_matched, warm.states_matched);
  EXPECT_EQ(cold.transitions, warm.transitions);
  EXPECT_EQ(cold.cascade_drains, warm.cascade_drains);
  EXPECT_EQ(cold.completed, warm.completed);
  EXPECT_EQ(cold.depth_histogram, warm.depth_histogram);
  ASSERT_EQ(cold.violations.size(), warm.violations.size());
  for (std::size_t i = 0; i < cold.violations.size(); ++i) {
    EXPECT_EQ(checker::FormatViolation(cold.violations[i]),
              checker::FormatViolation(warm.violations[i]));
  }
  EXPECT_EQ(cold.per_set_violations.size(), warm.per_set_violations.size());
}

// ---- Entry serialization -----------------------------------------------------

TEST(CacheEntryTest, RoundTripsResultExactly) {
  cache::GroupKey key;
  key.digest = 0x1234;
  key.text = "{\"k\":1}";
  checker::CheckResult result;
  result.states_explored = 17;
  result.states_matched = 4;
  result.transitions = 30;
  result.seconds = 0.123456789012345;
  result.depth_histogram = {1, 8, 8};
  checker::Violation violation;
  violation.property_id = "P06";
  violation.description = "door unlocks";
  violation.apps = {"A"};
  violation.depth = 2;
  result.violations.push_back(violation);

  const json::Value doc = cache::EntryToJson(key, "v1", result);
  const checker::CheckResult back = cache::EntryFromJson(doc, key, "v1");
  EXPECT_EQ(back.states_explored, result.states_explored);
  EXPECT_EQ(back.states_matched, result.states_matched);
  EXPECT_EQ(back.transitions, result.transitions);
  EXPECT_EQ(back.seconds, result.seconds);  // %.17g round-trips exactly
  EXPECT_EQ(back.depth_histogram, result.depth_histogram);
  ASSERT_EQ(back.violations.size(), 1u);
  EXPECT_EQ(back.violations[0].property_id, "P06");
  EXPECT_EQ(back.violations[0].apps, violation.apps);
  EXPECT_EQ(back.violations[0].depth, 2);
}

TEST(CacheEntryTest, RejectsWrongVersionAndCollidingKey) {
  cache::GroupKey key;
  key.digest = 1;
  key.text = "{\"k\":1}";
  const json::Value doc = cache::EntryToJson(key, "v1", {});
  EXPECT_THROW(cache::EntryFromJson(doc, key, "v2"), Error);
  cache::GroupKey other = key;
  other.text = "{\"k\":2}";  // same digest, different key document
  EXPECT_THROW(cache::EntryFromJson(doc, other, "v1"), Error);
}

// ---- End-to-end warm runs ----------------------------------------------------

TEST(CacheTest, WarmSerialRunIsIdenticalAndAllHits) {
  const std::string dir = FreshDir("warm_serial");
  cache::CacheConfig config;
  config.dir = dir;
  cache::ResultCache cache(config);
  core::Sanitizer sanitizer = TwoGroupSanitizer();
  core::SanitizerOptions options;
  options.check.max_events = 2;
  options.cache = &cache;

  core::SanitizerReport cold, warm;
  {
    ScopedRegistry scoped;
    cold = sanitizer.Check(options);
    EXPECT_EQ(scoped.registry.cache.hits, 0u);
    EXPECT_EQ(scoped.registry.cache.misses, 2u);
    EXPECT_EQ(scoped.registry.cache.stores, 2u);
  }
  {
    ScopedRegistry scoped;
    warm = sanitizer.Check(options);
    EXPECT_EQ(scoped.registry.cache.hits, 2u)
        << "every group must hit on an unchanged deployment";
    EXPECT_EQ(scoped.registry.cache.misses, 0u);
  }
  ExpectSameReport(cold, warm);
  // Serial merge sums the memoized per-group seconds in group order, so
  // even the timing line is byte-identical.
  EXPECT_EQ(cold.seconds, warm.seconds);
}

TEST(CacheTest, WarmParallelRunMatchesColdSerial) {
  const std::string dir = FreshDir("warm_jobs");
  cache::CacheConfig config;
  config.dir = dir;
  cache::ResultCache cache(config);
  core::Sanitizer sanitizer = TwoGroupSanitizer();
  core::SanitizerOptions options;
  options.check.max_events = 2;
  options.cache = &cache;

  core::SanitizerReport cold = sanitizer.Check(options);  // jobs = 1
  options.check.jobs = 4;
  core::SanitizerReport warm;
  {
    ScopedRegistry scoped;
    warm = sanitizer.Check(options);
    EXPECT_EQ(scoped.registry.cache.hits, 2u)
        << "the key must be --jobs independent";
  }
  ExpectSameReport(cold, warm);
}

TEST(CacheTest, DiskLayerServesAFreshProcess) {
  const std::string dir = FreshDir("disk");
  cache::CacheConfig config;
  config.dir = dir;
  core::Sanitizer sanitizer = TwoGroupSanitizer();
  core::SanitizerOptions options;
  options.check.max_events = 2;

  core::SanitizerReport cold;
  {
    cache::ResultCache cold_cache(config);
    options.cache = &cold_cache;
    cold = sanitizer.Check(options);
  }
  // A new instance has an empty memory layer — hits must come from disk.
  cache::ResultCache warm_cache(config);
  options.cache = &warm_cache;
  ScopedRegistry scoped;
  core::SanitizerReport warm = sanitizer.Check(options);
  EXPECT_EQ(scoped.registry.cache.hits_disk, 2u);
  ExpectSameReport(cold, warm);
  EXPECT_EQ(cold.seconds, warm.seconds);
}

TEST(CacheTest, CorruptEntryDegradesToMissAndIsRepaired) {
  const std::string dir = FreshDir("corrupt");
  cache::CacheConfig config;
  config.dir = dir;
  core::Sanitizer sanitizer = TwoGroupSanitizer();
  core::SanitizerOptions options;
  options.check.max_events = 2;
  core::SanitizerReport cold;
  {
    cache::ResultCache cache(config);
    options.cache = &cache;
    cold = sanitizer.Check(options);
  }
  // Truncate every entry to garbage.
  int corrupted = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "{ not json";
    ++corrupted;
  }
  ASSERT_EQ(corrupted, 2);
  cache::ResultCache cache(config);
  options.cache = &cache;
  ScopedRegistry scoped;
  core::SanitizerReport warm = sanitizer.Check(options);
  EXPECT_EQ(scoped.registry.cache.misses, 2u);
  EXPECT_EQ(scoped.registry.cache.corrupt_entries, 2u);
  EXPECT_EQ(scoped.registry.cache.stores, 2u) << "good entries rewritten";
  ExpectSameReport(cold, warm);
}

TEST(CacheTest, VersionBumpInvalidatesEverything) {
  const std::string dir = FreshDir("version");
  core::Sanitizer sanitizer = TwoGroupSanitizer();
  core::SanitizerOptions options;
  options.check.max_events = 2;
  cache::CacheConfig config;
  config.dir = dir;
  config.version = "build-A";
  {
    cache::ResultCache cache(config);
    options.cache = &cache;
    sanitizer.Check(options);
  }
  config.version = "build-B";
  cache::ResultCache cache(config);
  options.cache = &cache;
  ScopedRegistry scoped;
  sanitizer.Check(options);
  EXPECT_EQ(scoped.registry.cache.hits, 0u);
  EXPECT_EQ(scoped.registry.cache.misses, 2u);
  // The stale build-A entries are prunable but not served.
  const cache::DirStats stats = cache::ResultCache::Prune(dir, "build-B");
  EXPECT_EQ(stats.entries, 2u);   // the fresh build-B entries
  EXPECT_EQ(stats.stale, 2u);     // the build-A leftovers
  EXPECT_EQ(stats.removed, 2u);
}

TEST(CacheTest, SourceEditInvalidatesOnlyContainingGroups) {
  const std::string dir = FreshDir("edit");
  cache::CacheConfig config;
  config.dir = dir;
  cache::ResultCache cache(config);
  core::SanitizerOptions options;
  options.check.max_events = 2;
  options.cache = &cache;
  {
    core::Sanitizer sanitizer = TwoGroupSanitizer();
    sanitizer.Check(options);
  }
  // Same deployment, app B's source edited: A's group must still hit.
  core::Sanitizer sanitizer = TwoGroupSanitizer(kSourceBEdited);
  ScopedRegistry scoped;
  sanitizer.Check(options);
  EXPECT_EQ(scoped.registry.cache.hits, 1u)
      << "group {A} is untouched by B's edit";
  EXPECT_EQ(scoped.registry.cache.misses, 1u)
      << "only group {B} re-verifies";
}

// ---- Store policy and mechanics ----------------------------------------------

TEST(CacheTest, RefusesResultsThatAreNotPureFunctionsOfTheKey) {
  cache::ResultCache cache(cache::CacheConfig{});
  ScopedRegistry scoped;
  cache::GroupKey key;
  key.digest = 7;
  key.text = "k";
  checker::CheckResult incomplete;
  incomplete.completed = false;  // budget-stopped: wall-clock dependent
  cache.Store(key, incomplete, 1);
  checker::CheckResult racy_bitstate;
  racy_bitstate.store_fill_ratio = 0.25;  // bitstate occupancy
  cache.Store(key, racy_bitstate, 4);     // multi-lane: racy omission set
  EXPECT_EQ(scoped.registry.cache.store_skips, 2u);
  EXPECT_EQ(scoped.registry.cache.stores, 0u);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  // The same bitstate result computed on one lane is deterministic.
  cache.Store(key, racy_bitstate, 1);
  EXPECT_EQ(scoped.registry.cache.stores, 1u);
  EXPECT_TRUE(cache.Lookup(key).has_value());
}

TEST(CacheTest, MemoryLruEvictsLeastRecentlyUsed) {
  cache::CacheConfig config;
  config.memory_entries = 2;
  cache::ResultCache cache(config);
  ScopedRegistry scoped;
  auto key_n = [](std::uint64_t n) {
    cache::GroupKey key;
    key.digest = n;
    key.text = "key-" + std::to_string(n);
    return key;
  };
  cache.Store(key_n(1), {}, 1);
  cache.Store(key_n(2), {}, 1);
  EXPECT_TRUE(cache.Lookup(key_n(1)).has_value());  // touch 1; LRU = 2
  cache.Store(key_n(3), {}, 1);                     // evicts 2
  EXPECT_EQ(scoped.registry.cache.evictions, 1u);
  EXPECT_TRUE(cache.Lookup(key_n(1)).has_value());
  EXPECT_TRUE(cache.Lookup(key_n(3)).has_value());
  EXPECT_FALSE(cache.Lookup(key_n(2)).has_value());
}

TEST(CacheTest, DigestCollisionDetectedByKeyText) {
  cache::ResultCache cache(cache::CacheConfig{});
  cache::GroupKey key;
  key.digest = 99;
  key.text = "group-one";
  checker::CheckResult result;
  result.states_explored = 5;
  cache.Store(key, result, 1);
  cache::GroupKey colliding;
  colliding.digest = 99;  // same address
  colliding.text = "group-two";
  EXPECT_FALSE(cache.Lookup(colliding).has_value());
  EXPECT_TRUE(cache.Lookup(key).has_value());
}

TEST(CacheTest, SingleFlightComputesOnce) {
  cache::ResultCache cache(cache::CacheConfig{});
  ScopedRegistry scoped;
  cache::GroupKey key;
  key.digest = 42;
  key.text = "shared";
  std::atomic<int> computes{0};
  auto compute = [&]() {
    ++computes;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    checker::CheckResult result;
    result.states_explored = 11;
    return result;
  };
  std::vector<std::thread> threads;
  std::atomic<int> wrong_results{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&]() {
      const checker::CheckResult result =
          cache.FetchOrCompute(key, 1, compute);
      if (result.states_explored != 11) ++wrong_results;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computes, 1) << "concurrent same-key callers must share one run";
  EXPECT_EQ(wrong_results, 0);
  EXPECT_GT(scoped.registry.cache.singleflight_waits, 0u);
}

TEST(CacheTest, SingleFlightSurvivesLeaderFailure) {
  cache::ResultCache cache(cache::CacheConfig{});
  cache::GroupKey key;
  key.digest = 43;
  key.text = "flaky";
  std::atomic<int> attempts{0};
  auto compute = [&]() -> checker::CheckResult {
    if (attempts.fetch_add(1) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      throw Error("transient");
    }
    checker::CheckResult result;
    result.states_explored = 23;
    return result;
  };
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&]() {
      try {
        if (cache.FetchOrCompute(key, 1, compute).states_explored == 23) {
          ++successes;
        }
      } catch (const Error&) {
        // The failing leader rethrows to its own caller.
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(successes, 3) << "a waiter must take over after a failed leader";
}

TEST(CacheTest, ScanAndClearAccountForEveryFile) {
  const std::string dir = FreshDir("maint");
  cache::CacheConfig config;
  config.dir = dir;
  config.version = "v";
  cache::ResultCache cache(config);
  cache::GroupKey key;
  key.digest = 5;
  key.text = "k";
  cache.Store(key, {}, 1);
  std::ofstream(dir + "/deadbeefdeadbeef.json") << "not json";
  cache::DirStats stats = cache::ResultCache::Scan(dir, "v");
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.removed, 0u);
  stats = cache::ResultCache::Clear(dir);
  EXPECT_EQ(stats.removed, 2u);
  EXPECT_TRUE(fs::is_empty(dir));
}

}  // namespace
}  // namespace iotsan
