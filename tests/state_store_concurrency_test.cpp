// Concurrency tests for the shared visited-state stores and the work-
// stealing pool behind --jobs (docs/performance.md).
//
// The stores are hammered from many threads with overlapping state sets
// and then compared against a serial replay of the same inserts: the
// exhaustive store must agree exactly (no lost or duplicated states),
// the bitstate store's bit field must end in the identical configuration
// (fetch_or is commutative), with its new-state count bounded by the
// serial answer below and the raw insert count above.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "checker/state_store.hpp"
#include "util/thread_pool.hpp"

#include "gtest/gtest.h"

namespace iotsan::checker {
namespace {

constexpr int kThreads = 8;

std::span<const std::uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Thread t inserts states [t * 600, t * 600 + 1000): neighbouring
/// threads overlap on 400 states, so every worker races others on part
/// of its range.
std::vector<std::string> StatesFor(int thread) {
  std::vector<std::string> states;
  for (int i = thread * 600; i < thread * 600 + 1000; ++i) {
    states.push_back("state-vector-" + std::to_string(i));
  }
  return states;
}

TEST(StateStoreConcurrencyTest, ExhaustiveStoreLosesNoInserts) {
  ExhaustiveStore store(16);
  std::atomic<std::uint64_t> new_states{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &new_states, t] {
      for (const std::string& state : StatesFor(t)) {
        if (!store.TestAndInsert(Bytes(state))) {
          new_states.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Serial replay: the distinct union of all per-thread ranges.
  std::set<std::string> distinct;
  for (int t = 0; t < kThreads; ++t) {
    for (const std::string& state : StatesFor(t)) distinct.insert(state);
  }
  // Exactly one thread won each race; every state is represented once.
  EXPECT_EQ(store.size(), distinct.size());
  EXPECT_EQ(new_states.load(), distinct.size());
  // Accounted memory matches a serial build of the same store.
  ExhaustiveStore serial;
  for (const std::string& state : distinct) serial.TestAndInsert(Bytes(state));
  EXPECT_EQ(store.memory_bytes(), serial.memory_bytes());
  // Every inserted state re-probes as seen.
  for (const std::string& state : distinct) {
    EXPECT_TRUE(store.TestAndInsert(Bytes(state)));
  }
}

TEST(StateStoreConcurrencyTest, BitstateStoreMatchesSerialReplay) {
  BitstateStore store(std::size_t{1} << 20);
  std::atomic<std::uint64_t> insert_calls{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &insert_calls, t] {
      for (const std::string& state : StatesFor(t)) {
        store.TestAndInsert(Bytes(state));
        insert_calls.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::set<std::string> distinct;
  for (int t = 0; t < kThreads; ++t) {
    for (const std::string& state : StatesFor(t)) distinct.insert(state);
  }
  BitstateStore serial(std::size_t{1} << 20);
  for (const std::string& state : distinct) serial.TestAndInsert(Bytes(state));

  // fetch_or is commutative, so the final bit field is exactly the
  // serial one regardless of interleaving.
  EXPECT_DOUBLE_EQ(store.Occupancy(), serial.Occupancy());
  // Two threads racing the same fresh state may both see it as new, so
  // the parallel count can exceed the serial one — but never the raw
  // number of insert calls, and never drop below the serial answer.
  EXPECT_GE(store.size(), serial.size());
  EXPECT_LE(store.size(), insert_calls.load());
  // Every state hammered in re-probes as seen.
  for (const std::string& state : distinct) {
    EXPECT_TRUE(store.TestAndInsert(Bytes(state)));
  }
}

TEST(StateStoreConcurrencyTest, InternPoolAssignsConsistentIndices) {
  // The COLLAPSE codec's pools are hammered exactly like the exhaustive
  // store: overlapping component sets from racing workers.  Each
  // distinct byte vector must end up with exactly one stable index.
  InternPool pool(16);
  std::vector<std::thread> threads;
  // Per-thread observations: (component, index) pairs seen while racing.
  std::vector<std::vector<std::pair<std::string, std::uint32_t>>> seen(
      kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &seen, t] {
      for (const std::string& component : StatesFor(t)) {
        seen[static_cast<std::size_t>(t)].emplace_back(
            component, pool.Intern(Bytes(component)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::set<std::string> distinct;
  for (int t = 0; t < kThreads; ++t) {
    for (const std::string& component : StatesFor(t)) {
      distinct.insert(component);
    }
  }
  EXPECT_EQ(pool.size(), distinct.size());
  EXPECT_EQ(pool.lookups(), static_cast<std::uint64_t>(kThreads) * 1000);
  EXPECT_EQ(pool.hits(), pool.lookups() - pool.size());
  EXPECT_GT(pool.memory_bytes(), 0u);

  // Whatever index a racing thread observed must be what the pool hands
  // out forever after — and every thread must have agreed at the time.
  std::map<std::string, std::uint32_t> canonical;
  for (const std::string& component : distinct) {
    canonical[component] = pool.Intern(Bytes(component));
  }
  std::set<std::uint32_t> indices;
  for (const auto& [component, index] : canonical) {
    EXPECT_LT(index, pool.size());
    indices.insert(index);
  }
  EXPECT_EQ(indices.size(), distinct.size());  // no two share an index
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [component, index] : seen[static_cast<std::size_t>(t)]) {
      EXPECT_EQ(index, canonical[component]) << component;
    }
  }
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  constexpr std::size_t kCount = 4096;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  const util::ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.tasks_run, kCount);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // The checker nests branch-level ParallelFor inside the sanitizer's
  // group-level one; waiting callers must help drain the pool instead of
  // deadlocking on occupied workers.
  util::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&pool, &total](std::size_t) {
    pool.ParallelFor(8, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ExceptionsPropagateToTheCaller) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(16,
                                [](std::size_t i) {
                                  if (i == 7) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_EQ(util::ResolveJobs(1), 1u);
  EXPECT_EQ(util::ResolveJobs(4), 4u);
  EXPECT_EQ(util::ResolveJobs(-3), 1u);
  EXPECT_GE(util::ResolveJobs(0), 1u);  // hardware concurrency, >= 1
}

}  // namespace
}  // namespace iotsan::checker
