// Capability/device-type registry and device-state tests (paper §8's
// device model: 30 device types, finite attribute domains, event queues).
#include <gtest/gtest.h>

#include "devices/capability.hpp"
#include "devices/device.hpp"
#include "devices/device_type.hpp"
#include "devices/event.hpp"

namespace iotsan::devices {
namespace {

TEST(CapabilityRegistryTest, CoreCapabilitiesExist) {
  const auto& registry = CapabilityRegistry::Instance();
  for (const char* name :
       {"switch", "lock", "doorControl", "alarm", "valve", "thermostat",
        "motionSensor", "contactSensor", "presenceSensor",
        "temperatureMeasurement", "smokeDetector", "carbonMonoxideDetector",
        "waterSensor", "battery", "illuminanceMeasurement",
        "relativeHumidityMeasurement", "soilMoistureMeasurement",
        "voiceCall", "outlet"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.Find("warpDrive"), nullptr);
}

TEST(CapabilityRegistryTest, SwitchShape) {
  const CapabilitySpec& sw = *CapabilityRegistry::Instance().Find("switch");
  const AttributeSpec* attr = sw.FindAttribute("switch");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->values, (std::vector<std::string>{"off", "on"}));
  const CommandSpec* on = sw.FindCommand("on");
  ASSERT_NE(on, nullptr);
  EXPECT_EQ(on->attribute, "switch");
  EXPECT_EQ(on->value, "on");
  EXPECT_EQ(on->conflicts_with, (std::vector<std::string>{"off"}));
  EXPECT_FALSE(sw.sensor);
}

TEST(CapabilityRegistryTest, SensorFlags) {
  const auto& registry = CapabilityRegistry::Instance();
  EXPECT_TRUE(registry.Find("motionSensor")->sensor);
  EXPECT_TRUE(registry.Find("temperatureMeasurement")->sensor);
  // Alarms self-trigger (combo units), so they are sensors too.
  EXPECT_TRUE(registry.Find("alarm")->sensor);
  EXPECT_FALSE(registry.Find("lock")->sensor);
  EXPECT_FALSE(registry.Find("switch")->sensor);
}

TEST(CapabilityRegistryTest, AlarmConflicts) {
  const CapabilitySpec& alarm = *CapabilityRegistry::Instance().Find("alarm");
  const CommandSpec* off = alarm.FindCommand("off");
  ASSERT_NE(off, nullptr);
  EXPECT_EQ(off->conflicts_with,
            (std::vector<std::string>{"siren", "strobe", "both"}));
}

TEST(AttributeSpecTest, EnumIndexing) {
  const AttributeSpec& lock =
      *CapabilityRegistry::Instance().Find("lock")->FindAttribute("lock");
  EXPECT_EQ(lock.IndexOfValue("locked"), 0);
  EXPECT_EQ(lock.IndexOfValue("unlocked"), 1);
  EXPECT_EQ(lock.IndexOfValue("ajar"), -1);
  EXPECT_EQ(lock.ValueName(1), "unlocked");
  EXPECT_EQ(lock.ValueName(99), "?");
  EXPECT_EQ(lock.domain_size(), 2);
}

TEST(AttributeSpecTest, NumericIndexing) {
  const AttributeSpec& temp = *CapabilityRegistry::Instance()
                                   .Find("temperatureMeasurement")
                                   ->FindAttribute("temperature");
  // Nearest representative value wins.
  EXPECT_EQ(temp.NumericAt(temp.IndexOfNumeric(61)), 60);
  EXPECT_EQ(temp.NumericAt(temp.IndexOfNumeric(72)), 70);
  EXPECT_EQ(temp.NumericAt(temp.IndexOfNumeric(100)), 90);
  EXPECT_EQ(temp.ValueName(temp.IndexOfNumeric(80)), "80");
  // First domain value is the neutral initial reading.
  EXPECT_EQ(temp.NumericAt(0), 70);
}

TEST(DeviceTypeRegistryTest, ThirtyPlusTypes) {
  // Paper §8: "Currently, we support 30 different IoT devices."
  EXPECT_GE(DeviceTypeRegistry::Instance().All().size(), 30u);
}

TEST(DeviceTypeRegistryTest, TypeCapabilityBundles) {
  const auto& registry = DeviceTypeRegistry::Instance();
  const DeviceTypeSpec* multi = registry.Find("multiSensor");
  ASSERT_NE(multi, nullptr);
  EXPECT_TRUE(multi->HasCapability("contactSensor"));
  EXPECT_TRUE(multi->HasCapability("temperatureMeasurement"));
  EXPECT_TRUE(multi->HasCapability("accelerationSensor"));
  EXPECT_TRUE(multi->IsSensor());
  EXPECT_FALSE(multi->IsActuator());

  const DeviceTypeSpec* outlet = registry.Find("smartOutlet");
  ASSERT_NE(outlet, nullptr);
  EXPECT_TRUE(outlet->IsActuator());
  EXPECT_TRUE(outlet->HasCapability("outlet"));
  EXPECT_TRUE(outlet->HasCapability("actuator"));  // marker matches
}

TEST(DeviceTypeRegistryTest, CommandLookupAcrossCapabilities) {
  const DeviceTypeSpec* sprinkler =
      DeviceTypeRegistry::Instance().Find("sprinklerController");
  ASSERT_NE(sprinkler, nullptr);
  EXPECT_NE(sprinkler->FindCommand("on"), nullptr);     // switch
  EXPECT_NE(sprinkler->FindCommand("open"), nullptr);   // valve
  EXPECT_EQ(sprinkler->FindCommand("unlock"), nullptr);
}

TEST(DeviceTest, AttributeIndexing) {
  const DeviceTypeSpec& type =
      *DeviceTypeRegistry::Instance().Find("multiSensor");
  Device device("sensor1", type, {"frontDoorContact"});
  EXPECT_EQ(device.id(), "sensor1");
  EXPECT_GE(device.attributes().size(), 5u);
  EXPECT_GE(device.AttributeIndex("contact"), 0);
  EXPECT_GE(device.AttributeIndex("temperature"), 0);
  EXPECT_GE(device.AttributeIndex("battery"), 0);
  EXPECT_EQ(device.AttributeIndex("lock"), -1);
  EXPECT_TRUE(device.HasRole("frontDoorContact"));
  EXPECT_FALSE(device.HasRole("presence"));
}

TEST(DeviceTest, InitialState) {
  const DeviceTypeSpec& type =
      *DeviceTypeRegistry::Instance().Find("smartLock");
  Device device("lock1", type);
  State state = device.MakeInitialState();
  EXPECT_EQ(state.values.size(), device.attributes().size());
  EXPECT_EQ(state.physical.size(), device.attributes().size());
  EXPECT_TRUE(state.online);
  // Locks start locked (first enum value).
  const int lock_attr = device.AttributeIndex("lock");
  EXPECT_EQ(device.attributes()[lock_attr]->ValueName(
                state.values[lock_attr]),
            "locked");
}

TEST(EventTest, DescribeDeviceEvent) {
  const DeviceTypeSpec& type =
      *DeviceTypeRegistry::Instance().Find("presenceSensor");
  Device device("alice", type);
  Event event;
  event.source = EventSource::kDevice;
  event.device = 0;
  event.attribute = device.AttributeIndex("presence");
  event.value = 1;
  EXPECT_EQ(DescribeDeviceEvent(device, event), "presence/notpresent");
}

/// Every device type must be constructible with a valid initial state and
/// have internally consistent attribute indexing.
class AllDeviceTypesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllDeviceTypesTest, ConsistentSpec) {
  const DeviceTypeSpec* type =
      DeviceTypeRegistry::Instance().Find(GetParam());
  ASSERT_NE(type, nullptr);
  EXPECT_FALSE(type->display_name.empty());
  EXPECT_FALSE(type->capabilities.empty());
  Device device("probe", *type);
  State state = device.MakeInitialState();
  EXPECT_EQ(state.values.size(), device.attributes().size());
  for (std::size_t i = 0; i < device.attributes().size(); ++i) {
    const AttributeSpec& attr = *device.attributes()[i];
    EXPECT_FALSE(attr.name.empty());
    EXPECT_GT(attr.domain_size(), 0) << attr.name;
    // Initial value is inside the domain and the name round-trips.
    EXPECT_NE(attr.ValueName(state.values[i]), "?");
    // Attribute lookup by name must hit the same spec.
    EXPECT_GE(device.AttributeIndex(attr.name), 0);
  }
  // Every command must reference an attribute the type actually has and a
  // value inside that attribute's domain.
  for (const std::string& cap_name : type->capabilities) {
    const CapabilitySpec* cap =
        CapabilityRegistry::Instance().Find(cap_name);
    ASSERT_NE(cap, nullptr) << cap_name;
    for (const CommandSpec& cmd : cap->commands) {
      const AttributeSpec* attr = type->FindAttribute(cmd.attribute);
      ASSERT_NE(attr, nullptr) << cmd.name;
      if (!cmd.takes_argument) {
        EXPECT_GE(attr->IndexOfValue(cmd.value), 0)
            << cmd.name << " -> " << cmd.value;
      }
      // Conflicting commands must exist on the same capability.
      for (const std::string& other : cmd.conflicts_with) {
        EXPECT_NE(cap->FindCommand(other), nullptr)
            << cmd.name << " conflicts with unknown " << other;
      }
    }
  }
}

std::vector<std::string> AllTypeNames() {
  std::vector<std::string> names;
  for (const DeviceTypeSpec& type : DeviceTypeRegistry::Instance().All()) {
    names.push_back(type.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllDeviceTypesTest,
                         ::testing::ValuesIn(AllTypeNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace iotsan::devices
