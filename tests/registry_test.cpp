// Fleet-registry tests (src/registry + the /v1/deployments surface):
//
//   * delta re-verification is byte-identical to a cold full check of
//     the same revision — serial and with --jobs 4 (the registry path
//     reports deterministic summed seconds; see docs/fleet.md)
//   * only the groups a revision touched are recomputed; added and
//     removed apps reclassify correctly
//   * the If-Match revision guard (409), corrupt-entry recovery, and
//     revision persistence across store restarts
//   * concurrent PUT + check on the same id stays clean under TSan
//   * the REST surface end to end: PUT/GET/DELETE/check, ETag headers,
//     405 with Allow
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hpp"
#include "config/deployment.hpp"
#include "core/service.hpp"
#include "registry/deployment_store.hpp"
#include "registry/fleet.hpp"
#include "server/handlers.hpp"
#include "server/server.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace iotsan::registry {
namespace {

// ---- fixtures ----------------------------------------------------------------

/// The fleet test deployment: one presence/lock pair running the
/// paper's §8 violation ("Auto Mode Change" + "Unlock Door"), plus
/// `device_pairs` independent sensor/heater pairs of which the first
/// `app_pairs` run an "It's Too Cold" instance.  Those instances don't
/// subscribe to location mode, so each is its own related-set group;
/// `threshold` parameterizes pair 0's temperature input, letting a
/// revision dirty exactly one group's fingerprint.  Devices are emitted
/// for every pair regardless of `app_pairs` — group fingerprints cover
/// the whole device table, so keeping it constant is what lets
/// app-only revisions reuse untouched groups.
json::Value FleetDeploymentJson(int device_pairs, int app_pairs,
                                int threshold) {
  json::Array devices;
  json::Array apps;
  {
    json::Object presence;
    presence["id"] = "presence0";
    presence["type"] = "presenceSensor";
    presence["roles"] = json::Array{json::Value("presence")};
    devices.push_back(json::Value(std::move(presence)));
    json::Object lock;
    lock["id"] = "lock0";
    lock["type"] = "smartLock";
    lock["roles"] = json::Array{json::Value("mainDoorLock")};
    devices.push_back(json::Value(std::move(lock)));

    json::Object mode_app;
    mode_app["app"] = "Auto Mode Change";
    json::Object mode_inputs;
    mode_inputs["people"] = json::Array{json::Value("presence0")};
    mode_inputs["homeMode"] = "Home";
    mode_inputs["awayMode"] = "Away";
    mode_app["inputs"] = std::move(mode_inputs);
    apps.push_back(json::Value(std::move(mode_app)));

    json::Object unlock_app;
    unlock_app["app"] = "Unlock Door";
    json::Object unlock_inputs;
    unlock_inputs["lock1"] = json::Array{json::Value("lock0")};
    unlock_app["inputs"] = std::move(unlock_inputs);
    apps.push_back(json::Value(std::move(unlock_app)));
  }
  for (int i = 0; i < device_pairs; ++i) {
    json::Object sensor;
    sensor["id"] = "temp" + std::to_string(i);
    sensor["type"] = "motionTempSensor";
    devices.push_back(json::Value(std::move(sensor)));
    json::Object heater;
    heater["id"] = "heater" + std::to_string(i);
    heater["type"] = "smartSwitch";
    devices.push_back(json::Value(std::move(heater)));
  }
  for (int i = 0; i < app_pairs; ++i) {
    json::Object cold_app;
    cold_app["app"] = "It's Too Cold";
    json::Object cold_inputs;
    cold_inputs["temperatureSensor1"] =
        json::Array{json::Value("temp" + std::to_string(i))};
    cold_inputs["temperature1"] = i == 0 ? threshold : 40;
    cold_inputs["switch1"] =
        json::Array{json::Value("heater" + std::to_string(i))};
    cold_app["inputs"] = std::move(cold_inputs);
    apps.push_back(json::Value(std::move(cold_app)));
  }
  json::Object doc;
  doc["name"] = "fleet home";
  doc["devices"] = std::move(devices);
  doc["apps"] = std::move(apps);
  return json::Value(std::move(doc));
}

StoredDeployment MakeStored(const std::string& id, int pairs,
                            int threshold, int app_pairs = -1) {
  StoredDeployment out;
  out.id = id;
  out.deployment = config::ParseDeployment(FleetDeploymentJson(
      pairs, app_pairs < 0 ? pairs : app_pairs, threshold));
  return out;
}

std::string TempDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("iotsan_registry_test_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Installs a telemetry registry for the test body (the delta engine
/// ticks registry.* counters only when one is active).
class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { telemetry::SetActive(&registry_); }
  void TearDown() override { telemetry::SetActive(nullptr); }
  telemetry::Registry registry_;
};

// ---- delta correctness -------------------------------------------------------

TEST_F(RegistryTest, DeltaIsByteIdenticalToColdFullCheckSerial) {
  // One shared result cache makes the comparison exact: the cold full
  // check replays the per-group entries the registry checks recorded,
  // so the reported per-group seconds agree byte for byte.
  cache::ResultCache cache(cache::CacheConfig{});
  core::ServiceEnv env;
  env.cache = &cache;
  core::RequestOptions options;
  options.jobs = 1;

  Fleet fleet(StoreConfig{});
  ASSERT_EQ(fleet.Put(MakeStored("home", 4, 40)), 1u);
  auto full = fleet.Check("home", std::nullopt, options, env);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->groups_reused, 0u);
  EXPECT_EQ(full->groups_recomputed, full->groups_total);
  EXPECT_GE(full->groups_total, 6u);

  // Revision 2 edits one app input: exactly one group's fingerprint
  // changes.
  ASSERT_EQ(fleet.Put(MakeStored("home", 4, 35)), 2u);
  auto delta = fleet.Check("home", std::nullopt, options, env);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->groups_total, full->groups_total);
  EXPECT_EQ(delta->groups_recomputed, 1u);
  EXPECT_EQ(delta->groups_reused, delta->groups_total - 1);

  // Cold full check of the same revision through the CLI/service code
  // path, against the same cache.
  core::CheckRequest request;
  request.deployment =
      config::ParseDeployment(FleetDeploymentJson(4, 4, 35));
  request.options = options;
  core::CheckResponse cold = core::RunCheck(request, env);
  EXPECT_EQ(delta->response.text, cold.text);
  EXPECT_EQ(delta->response.exit_code, cold.exit_code);
  EXPECT_EQ(delta->response.report.states_explored,
            cold.report.states_explored);
  EXPECT_EQ(delta->response.report.seconds, cold.report.seconds);

  EXPECT_GT(registry_.registry.groups_reused.load(), 0u);
  EXPECT_EQ(registry_.registry.checks_full.load(), 1u);
  EXPECT_EQ(registry_.registry.checks_delta.load(), 1u);
}

TEST_F(RegistryTest, DeltaIsByteIdenticalToColdFullCheckWithJobs4) {
  cache::ResultCache cache(cache::CacheConfig{});
  core::ServiceEnv env;
  env.cache = &cache;
  core::RequestOptions options;
  options.jobs = 4;

  Fleet fleet(StoreConfig{});
  fleet.Put(MakeStored("home", 4, 40));
  auto full = fleet.Check("home", std::nullopt, options, env);
  ASSERT_TRUE(full.has_value());
  fleet.Put(MakeStored("home", 4, 35));
  auto delta = fleet.Check("home", std::nullopt, options, env);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->groups_recomputed, 1u);

  // A fresh registry has no prior record, so this is a cold full check
  // through the same deterministic dispatch (summed seconds), sharing
  // the cache for exact seconds replay.
  Fleet cold_fleet(StoreConfig{});
  cold_fleet.Put(MakeStored("home", 4, 35));
  auto cold = cold_fleet.Check("home", std::nullopt, options, env);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(cold->groups_reused, 0u);
  EXPECT_EQ(delta->response.text, cold->response.text);
  EXPECT_EQ(delta->response.exit_code, cold->response.exit_code);
  EXPECT_EQ(delta->response.report.seconds, cold->response.report.seconds);
}

TEST_F(RegistryTest, AddedAndRemovedAppsReclassifyGroups) {
  core::ServiceEnv env;
  core::RequestOptions options;
  options.jobs = 1;

  Fleet fleet(StoreConfig{});
  fleet.Put(MakeStored("home", 4, 40, 3));
  auto first = fleet.Check("home", std::nullopt, options, env);
  ASSERT_TRUE(first.has_value());
  const std::uint64_t base_groups = first->groups_total;

  // A new app over existing devices only runs its own group.
  fleet.Put(MakeStored("home", 4, 40, 4));
  auto grown = fleet.Check("home", std::nullopt, options, env);
  ASSERT_TRUE(grown.has_value());
  EXPECT_GT(grown->groups_total, base_groups);
  EXPECT_EQ(grown->groups_reused, base_groups);
  EXPECT_EQ(grown->groups_recomputed, grown->groups_total - base_groups);

  // Shrinking back re-runs nothing: every surviving group was retained,
  // removed groups simply drop out of the record.
  fleet.Put(MakeStored("home", 4, 40, 3));
  auto shrunk = fleet.Check("home", std::nullopt, options, env);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(shrunk->groups_total, base_groups);
  EXPECT_EQ(shrunk->groups_recomputed, 0u);
  EXPECT_EQ(shrunk->groups_reused, base_groups);

  // And a re-check with no new revision reuses everything too.
  auto idle = fleet.Check("home", std::nullopt, options, env);
  ASSERT_TRUE(idle.has_value());
  EXPECT_EQ(idle->groups_recomputed, 0u);
}

// ---- revision guard and lifecycle --------------------------------------------

TEST_F(RegistryTest, StaleIfMatchThrowsRevisionConflict) {
  core::ServiceEnv env;
  core::RequestOptions options;
  options.jobs = 1;
  Fleet fleet(StoreConfig{});
  EXPECT_EQ(fleet.Put(MakeStored("home", 1, 40)), 1u);
  EXPECT_EQ(fleet.Put(MakeStored("home", 1, 35)), 2u);
  try {
    fleet.Check("home", std::uint64_t{1}, options, env);
    FAIL() << "stale If-Match did not throw";
  } catch (const RevisionConflict& e) {
    EXPECT_EQ(e.expected_revision, 1u);
    EXPECT_EQ(e.current_revision, 2u);
  }
  EXPECT_EQ(registry_.registry.revision_conflicts.load(), 1u);
  // The current revision still checks.
  EXPECT_TRUE(
      fleet.Check("home", std::uint64_t{2}, options, env).has_value());
  // Unknown ids are nullopt, not errors.
  EXPECT_FALSE(
      fleet.Check("nope", std::nullopt, options, env).has_value());
}

TEST_F(RegistryTest, CorruptEntryIsNotFoundAndRecoverable) {
  const std::string dir = TempDir("corrupt");
  {
    DeploymentStore store(StoreConfig{dir, 64});
    EXPECT_EQ(store.Put(MakeStored("home", 1, 40)), 1u);
  }
  std::ofstream(dir + "/home/deployment.json", std::ios::trunc)
      << "{not json";

  DeploymentStore reopened(StoreConfig{dir, 64});
  EXPECT_FALSE(reopened.Get("home").has_value());
  EXPECT_GT(registry_.registry.corrupt_entries.load(), 0u);
  // A fresh PUT heals the entry (the corrupt revision is unreadable, so
  // numbering restarts — monotonic per readable lineage).
  EXPECT_EQ(reopened.Put(MakeStored("home", 1, 40)), 1u);
  EXPECT_TRUE(reopened.Get("home").has_value());
}

TEST_F(RegistryTest, RevisionsPersistAcrossStoreRestarts) {
  const std::string dir = TempDir("persist");
  {
    DeploymentStore store(StoreConfig{dir, 64});
    EXPECT_EQ(store.Put(MakeStored("home", 1, 40)), 1u);
    EXPECT_EQ(store.Put(MakeStored("home", 1, 35)), 2u);
  }
  DeploymentStore reopened(StoreConfig{dir, 64});
  auto deployment = reopened.Get("home");
  ASSERT_TRUE(deployment.has_value());
  EXPECT_EQ(deployment->revision, 2u);
  EXPECT_EQ(reopened.Put(MakeStored("home", 1, 45)), 3u);
  EXPECT_EQ(reopened.List(), std::vector<std::string>{"home"});
}

TEST_F(RegistryTest, ConcurrentPutAndCheckStayCoherent) {
  core::ServiceEnv env;
  core::RequestOptions options;
  options.jobs = 1;
  Fleet fleet(StoreConfig{});
  fleet.Put(MakeStored("home", 1, 40));

  std::thread writer([&] {
    for (int i = 0; i < 16; ++i) {
      fleet.Put(MakeStored("home", 1, i % 2 == 0 ? 35 : 40));
    }
  });
  std::thread checker([&] {
    for (int i = 0; i < 8; ++i) {
      auto outcome = fleet.Check("home", std::nullopt, options, env);
      ASSERT_TRUE(outcome.has_value());
      EXPECT_GT(outcome->groups_total, 0u);
    }
  });
  writer.join();
  checker.join();
  auto deployment = fleet.Get("home");
  ASSERT_TRUE(deployment.has_value());
  EXPECT_EQ(deployment->revision, 17u);
}

// ---- REST surface ------------------------------------------------------------

/// Minimal loopback client (same shape as server_test's).
struct ClientResponse {
  int status = 0;
  std::string head;
  std::string body;
  bool complete = false;
};

std::string HeaderValue(const ClientResponse& response,
                        const std::string& name) {
  const std::string marker = "\r\n" + name + ": ";
  const std::size_t at = response.head.find(marker);
  if (at == std::string::npos) return "";
  const std::size_t start = at + marker.size();
  return response.head.substr(
      start, response.head.find("\r\n", start) - start);
}

ClientResponse Fetch(int port, const std::string& method,
                     const std::string& target, const std::string& body = "",
                     const std::string& extra_headers = "") {
  ClientResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: 127.0.0.1\r\nConnection: close\r\n";
  wire += extra_headers;
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  wire += body;
  std::size_t sent = 0;
  bool ok = true;
  while (ok && sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) ok = false;
    sent += n > 0 ? static_cast<std::size_t>(n) : 0;
  }
  std::string data;
  char chunk[4096];
  while (ok) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) ok = false;
    if (n <= 0) break;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = data.find("\r\n\r\n");
  if (!ok || head_end == std::string::npos ||
      data.rfind("HTTP/1.1 ", 0) != 0) {
    return out;
  }
  out.head = data.substr(0, head_end);
  out.status = std::atoi(out.head.c_str() + 9);
  out.body = data.substr(head_end + 4);
  out.complete = true;
  return out;
}

std::string PutBody(int pairs, int threshold) {
  json::Object doc;
  doc["schema"] = server::kRequestSchema;
  doc["deployment"] = FleetDeploymentJson(pairs, pairs, threshold);
  return json::Value(std::move(doc)).Dump(0);
}

TEST_F(RegistryTest, RestSurfaceRoundTrip) {
  server::ServerConfig config;
  config.port = 0;
  config.registry_dir = TempDir("rest");
  server::Server server(config);
  server.Start();
  const int port = server.port();

  // PUT creates at revision 1 (201 + ETag), updates at 2 (200).
  ClientResponse created =
      Fetch(port, "PUT", "/v1/deployments/home", PutBody(2, 40));
  ASSERT_TRUE(created.complete);
  EXPECT_EQ(created.status, 201);
  EXPECT_EQ(HeaderValue(created, "ETag"), "\"1\"");
  EXPECT_EQ(json::Parse(created.body).At("revision").AsInt(), 1);
  ClientResponse updated =
      Fetch(port, "PUT", "/v1/deployments/home", PutBody(2, 35));
  ASSERT_TRUE(updated.complete);
  EXPECT_EQ(updated.status, 200);
  EXPECT_EQ(HeaderValue(updated, "ETag"), "\"2\"");

  // GET serves the stored document verbatim with the revision ETag.
  ClientResponse got = Fetch(port, "GET", "/v1/deployments/home");
  ASSERT_TRUE(got.complete);
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(HeaderValue(got, "ETag"), "\"2\"");
  json::Value stored = json::Parse(got.body);
  EXPECT_EQ(stored.At("schema").AsString(), kDeploymentSchema);
  EXPECT_EQ(stored.At("revision").AsInt(), 2);

  // First check is full; a re-check of the same revision reuses every
  // group.
  ClientResponse check =
      Fetch(port, "POST", "/v1/deployments/home/check");
  ASSERT_TRUE(check.complete);
  ASSERT_EQ(check.status, 200);
  json::Value check_doc = json::Parse(check.body);
  EXPECT_EQ(check_doc.At("delta").At("groups_reused").AsInt(), 0);
  EXPECT_GT(check_doc.At("delta").At("groups_recomputed").AsInt(), 0);
  EXPECT_EQ(check_doc.At("verdict").AsString(), "violations");
  ClientResponse recheck =
      Fetch(port, "POST", "/v1/deployments/home/check");
  ASSERT_TRUE(recheck.complete);
  json::Value recheck_doc = json::Parse(recheck.body);
  EXPECT_EQ(recheck_doc.At("delta").At("groups_recomputed").AsInt(), 0);
  EXPECT_EQ(recheck_doc.At("text").AsString(),
            check_doc.At("text").AsString());

  // Stale If-Match answers 409 revision_conflict; the fresh pin passes.
  ClientResponse stale = Fetch(port, "POST", "/v1/deployments/home/check",
                               "", "If-Match: \"1\"\r\n");
  ASSERT_TRUE(stale.complete);
  EXPECT_EQ(stale.status, 409);
  EXPECT_EQ(json::Parse(stale.body).At("error").At("code").AsString(),
            server::kErrConflict);
  ClientResponse pinned = Fetch(port, "POST", "/v1/deployments/home/check",
                                "", "If-Match: \"2\"\r\n");
  ASSERT_TRUE(pinned.complete);
  EXPECT_EQ(pinned.status, 200);

  // The status list reflects the retained record.
  ClientResponse list = Fetch(port, "GET", "/v1/deployments");
  ASSERT_TRUE(list.complete);
  json::Value list_doc = json::Parse(list.body);
  const json::Array& rows = list_doc.At("deployments").AsArray();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].At("id").AsString(), "home");
  EXPECT_EQ(rows[0].At("checked_revision").AsInt(), 2);
  EXPECT_EQ(rows[0].At("verdict").AsString(), "violations");

  // Wrong methods carry the Allow header.
  ClientResponse wrong = Fetch(port, "POST", "/v1/deployments");
  ASSERT_TRUE(wrong.complete);
  EXPECT_EQ(wrong.status, 405);
  EXPECT_EQ(HeaderValue(wrong, "Allow"), "GET");
  ClientResponse wrong_item = Fetch(port, "PATCH", "/v1/deployments/home");
  ASSERT_TRUE(wrong_item.complete);
  EXPECT_EQ(wrong_item.status, 405);
  EXPECT_EQ(HeaderValue(wrong_item, "Allow"), "GET, PUT, DELETE");

  // Bad ids are rejected before touching the store.
  ClientResponse bad_id = Fetch(port, "GET", "/v1/deployments/..");
  ASSERT_TRUE(bad_id.complete);
  EXPECT_EQ(bad_id.status, 400);

  // Deployments survive a server restart (disk-backed registry).
  server.Stop();
  server::Server reopened(config);
  reopened.Start();
  ClientResponse after = Fetch(reopened.port(), "GET",
                               "/v1/deployments/home");
  ASSERT_TRUE(after.complete);
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(HeaderValue(after, "ETag"), "\"2\"");

  // DELETE removes the deployment and its record.
  ClientResponse removed =
      Fetch(reopened.port(), "DELETE", "/v1/deployments/home");
  ASSERT_TRUE(removed.complete);
  EXPECT_EQ(removed.status, 200);
  ClientResponse gone = Fetch(reopened.port(), "GET",
                              "/v1/deployments/home");
  ASSERT_TRUE(gone.complete);
  EXPECT_EQ(gone.status, 404);
  reopened.Stop();
}

}  // namespace
}  // namespace iotsan::registry
