// IFTTT front-end tests (paper §11): applet parsing, translation into
// one-handler apps, deployment construction, and end-to-end checking.
#include <gtest/gtest.h>

#include "core/sanitizer.hpp"
#include "dsl/parser.hpp"
#include "ifttt/applet.hpp"
#include "ir/analyzer.hpp"
#include "util/error.hpp"

namespace iotsan::ifttt {
namespace {

constexpr const char* kUnlockRule = R"JSON({
  "name": "rule u",
  "trigger": {"service": "smartthings_presence", "event": "notpresent"},
  "action": {"service": "august_lock", "command": "unlock"}})JSON";

TEST(AppletTest, ParseSingle) {
  Applet applet = ParseApplet(json::Parse(kUnlockRule));
  EXPECT_EQ(applet.name, "rule u");
  EXPECT_EQ(applet.trigger_service, "smartthings_presence");
  EXPECT_EQ(applet.trigger_event, "notpresent");
  EXPECT_EQ(applet.action_service, "august_lock");
  EXPECT_EQ(applet.action_command, "unlock");
}

TEST(AppletTest, ServicesAreModeled) {
  // The paper models 8 popular IoT services; we bundle a few more.
  EXPECT_GE(Services().size(), 8u);
  const ServiceSpec* motion = FindService("smartthings_motion");
  ASSERT_NE(motion, nullptr);
  EXPECT_TRUE(motion->is_trigger);
  EXPECT_FALSE(motion->is_action);
  const ServiceSpec* siren = FindService("ring_siren");
  ASSERT_NE(siren, nullptr);
  EXPECT_TRUE(siren->is_action);
  EXPECT_EQ(FindService("nope"), nullptr);
}

TEST(AppletTest, RejectsUnknownServicesAndCommands) {
  EXPECT_THROW(ParseApplet(json::Parse(R"({
    "name": "r", "trigger": {"service": "telepathy", "event": "x"},
    "action": {"service": "ring_siren", "command": "siren"}})")),
               SemanticError);
  EXPECT_THROW(ParseApplet(json::Parse(R"({
    "name": "r",
    "trigger": {"service": "smartthings_motion", "event": "active"},
    "action": {"service": "ring_siren", "command": "selfdestruct"}})")),
               SemanticError);
  // Action services cannot trigger and vice versa.
  EXPECT_THROW(ParseApplet(json::Parse(R"({
    "name": "r", "trigger": {"service": "ring_siren", "event": "siren"},
    "action": {"service": "august_lock", "command": "lock"}})")),
               SemanticError);
}

TEST(AppletTest, TranslationIsAOneHandlerApp) {
  Applet applet = ParseApplet(json::Parse(kUnlockRule));
  std::string source = ToSmartScript(applet);
  // §11: each rule is an app with a single event handler holding a
  // single instruction.
  dsl::App app = dsl::ParseApp(source);
  EXPECT_EQ(app.name, "rule u");
  ASSERT_EQ(app.inputs.size(), 2u);
  EXPECT_EQ(app.inputs[0].name, "triggerDev");
  EXPECT_EQ(app.inputs[1].name, "actionDev");

  ir::AnalyzedApp analyzed = ir::AnalyzeSource(source, applet.name);
  ASSERT_EQ(analyzed.handlers.size(), 1u);
  EXPECT_EQ(analyzed.handlers[0].name, "ruleHandler");
  ASSERT_EQ(analyzed.handlers[0].outputs.size(), 1u);
  EXPECT_EQ(analyzed.handlers[0].outputs[0].ToString(), "lock/unlocked");
  ASSERT_EQ(analyzed.subscriptions.size(), 1u);
  EXPECT_EQ(analyzed.subscriptions[0].attribute, "presence");
  EXPECT_EQ(analyzed.subscriptions[0].value, "notpresent");
}

TEST(AppletTest, VoicePhrasesMapToButtonPushes) {
  Applet applet = ParseApplet(json::Parse(R"({
    "name": "voice rule",
    "trigger": {"service": "amazon_alexa", "event": "alexa open"},
    "action": {"service": "august_lock", "command": "unlock"}})"));
  ir::AnalyzedApp analyzed =
      ir::AnalyzeSource(ToSmartScript(applet), applet.name);
  ASSERT_EQ(analyzed.subscriptions.size(), 1u);
  EXPECT_EQ(analyzed.subscriptions[0].attribute, "button");
  EXPECT_EQ(analyzed.subscriptions[0].value, "pushed");
}

TEST(AppletTest, BuildDeploymentWiresDevicesAndRoles) {
  std::vector<Applet> applets =
      ParseApplets(std::string("[") + kUnlockRule + "]");
  config::Deployment deployment = BuildDeployment(applets);
  ASSERT_EQ(deployment.devices.size(), 2u);
  EXPECT_NE(deployment.FindDevice("smartthings_presenceDev"), nullptr);
  EXPECT_NE(deployment.FindDevice("august_lockDev"), nullptr);
  EXPECT_EQ(deployment.DevicesWithRole("presence").size(), 1u);
  EXPECT_EQ(deployment.DevicesWithRole("mainDoorLock").size(), 1u);
  ASSERT_EQ(deployment.apps.size(), 1u);
  EXPECT_EQ(deployment.apps[0].inputs.at("triggerDev").device_ids[0],
            "smartthings_presenceDev");
}

TEST(AppletTest, SharedServicesShareOneDevice) {
  std::vector<Applet> applets = ParseApplets(R"JSON([
    {"name": "r1",
     "trigger": {"service": "smartthings_motion", "event": "active"},
     "action": {"service": "ring_siren", "command": "siren"}},
    {"name": "r2",
     "trigger": {"service": "smartthings_motion", "event": "inactive"},
     "action": {"service": "ring_siren", "command": "off"}}
  ])JSON");
  config::Deployment deployment = BuildDeployment(applets);
  EXPECT_EQ(deployment.devices.size(), 2u);  // one per distinct service
  EXPECT_EQ(deployment.apps.size(), 2u);
}

TEST(AppletTest, EndToEndUnlockRuleViolatesP06) {
  std::vector<Applet> applets =
      ParseApplets(std::string("[") + kUnlockRule + "]");
  config::Deployment deployment = BuildDeployment(applets);
  core::Sanitizer sanitizer(deployment);
  for (const auto& [name, source] : RuleSources(applets)) {
    sanitizer.AddAppSource(name, source);
  }
  core::SanitizerOptions options;
  options.check.max_events = 2;
  core::SanitizerReport report = sanitizer.Check(options);
  EXPECT_TRUE(report.HasViolation("P06"));
}

TEST(AppletTest, ParseAppletsArray) {
  EXPECT_EQ(ParseApplets("[]").size(), 0u);
  EXPECT_THROW(ParseApplets("{}"), Error);
  EXPECT_THROW(ParseApplets(R"([{"name": ""}])"), Error);
}

}  // namespace
}  // namespace iotsan::ifttt
