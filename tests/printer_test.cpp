// AST printer tests: renderings must be stable, re-parseable, and
// faithful for every corpus app (the printer backs translation reports
// and corpus variants).
#include <gtest/gtest.h>

#include <cctype>

#include "corpus/corpus.hpp"
#include "dsl/parser.hpp"
#include "dsl/printer.hpp"

namespace iotsan::dsl {
namespace {

TEST(PrinterTest, ExpressionForms) {
  EXPECT_EQ(PrintExpr(*ParseExpression("a?.b")), "a?.b");
  EXPECT_EQ(PrintExpr(*ParseExpression("[:]")), "[:]");
  EXPECT_EQ(PrintExpr(*ParseExpression("x in [1, 2]")), "(x in [1, 2])");
  EXPECT_EQ(PrintExpr(*ParseExpression("a ?: b")), "(a ?: b)");
  EXPECT_EQ(PrintExpr(*ParseExpression("f(x) { it }")),
            "f(x, { it; })");
  EXPECT_EQ(PrintExpr(*ParseExpression("m(name: \"x\")")),
            "m(name: \"x\")");
  EXPECT_EQ(PrintExpr(*ParseExpression("\"say \\\"hi\\\"\"")),
            "\"say \\\"hi\\\"\"");
}

TEST(PrinterTest, StatementForms) {
  App app = ParseApp(R"(
definition(name: "P", namespace: "t")
def run() {
    def x = 1
    x += 2
    if (x > 2) {
        return x
    } else if (x == 2) {
        return 0
    } else {
        x -= 1
    }
    for (i in [1, 2]) {
        while (x < 10) {
            x = x + i
        }
    }
    return
}
)");
  std::string printed = PrintApp(app);
  EXPECT_NE(printed.find("def x = 1"), std::string::npos);
  EXPECT_NE(printed.find("x += 2"), std::string::npos);
  EXPECT_NE(printed.find("} else if ((x == 2)) {"), std::string::npos);
  EXPECT_NE(printed.find("for (i in [1, 2]) {"), std::string::npos);
  EXPECT_NE(printed.find("while ((x < 10)) {"), std::string::npos);
  // The printed form must re-parse to an identical rendering (fixpoint).
  EXPECT_EQ(PrintApp(ParseApp(printed)), printed);
}

/// Print -> parse -> print must reach a fixpoint for every corpus app:
/// the printer loses no structure the parser can see.
class CorpusRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusRoundTripTest, PrintParseFixpoint) {
  const corpus::CorpusApp* app = corpus::FindApp(GetParam());
  ASSERT_NE(app, nullptr);
  App parsed = ParseApp(app->source, app->name);
  std::string once = PrintApp(parsed);
  App reparsed = ParseApp(once, app->name);
  EXPECT_EQ(PrintApp(reparsed), once) << app->name;
  EXPECT_EQ(reparsed.inputs.size(), parsed.inputs.size());
  EXPECT_EQ(reparsed.methods.size(), parsed.methods.size());
}

std::vector<std::string> SomeApps() {
  // A representative slice (full-corpus parsing is covered elsewhere).
  return {"Virtual Thermostat", "Good Night",          "Smart Security",
          "Laundry Monitor",    "Thermostat Window Check",
          "Auto Mode Change",   "Leak Guard",          "Alarm Silencer"};
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusRoundTripTest,
                         ::testing::ValuesIn(SomeApps()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace iotsan::dsl
