// Robustness and determinism sweeps:
//   * a seeded random SmartScript generator produces structurally valid
//     apps; the whole pipeline must check them without crashing;
//   * repeated runs of the checker over the same system must be
//     bit-identical (determinism is what makes every experiment in
//     EXPERIMENTS.md reproducible).
#include <gtest/gtest.h>

#include <string>

#include "config/builder.hpp"
#include "core/sanitizer.hpp"
#include "util/rng.hpp"

namespace iotsan {
namespace {

/// Generates a random-but-valid SmartScript app over the harness devices:
/// a random subset of subscriptions, randomly nested conditions, and
/// random command/API statements.
std::string RandomApp(Rng& rng, const std::string& name) {
  const char* kTriggers[] = {
      "subscribe(m1, \"motion\", handler)",
      "subscribe(m1, \"motion.active\", handler)",
      "subscribe(c1, \"contact\", handler)",
      "subscribe(c1, \"contact.open\", handler)",
      "subscribe(p1, \"presence\", handler)",
      "subscribe(t1, \"temperature\", handler)",
      "subscribe(location, \"mode\", handler)",
      "subscribe(app, handler)",
  };
  const char* kActions[] = {
      "sw1.on()",
      "sw1.off()",
      "sw2.on()",
      "lock1.lock()",
      "lock1.unlock()",
      "setLocationMode(\"Away\")",
      "setLocationMode(\"Night\")",
      "sendPush(\"note ${evt.value}\")",
      "sendSms(\"555-0100\", \"msg\")",
      "runIn(60, later)",
      "state.n = (state.n ?: 0) + 1",
      "sw1.currentSwitch == \"on\" ? sw1.off() : sw1.on()",
  };
  const char* kConditions[] = {
      "evt.value == \"active\"",
      "location.mode == \"Home\"",
      "t1.currentTemperature > 70",
      "state.n == null || state.n < 3",
      "sw1.currentSwitch == \"off\"",
  };

  std::string body;
  const int statements = 1 + static_cast<int>(rng.NextBelow(4));
  for (int s = 0; s < statements; ++s) {
    if (rng.NextBool(0.5)) {
      body += "    if (" +
              std::string(kConditions[rng.NextBelow(5)]) + ") {\n        " +
              kActions[rng.NextBelow(12)] + "\n    } else {\n        " +
              kActions[rng.NextBelow(12)] + "\n    }\n";
    } else {
      body += "    " + std::string(kActions[rng.NextBelow(12)]) + "\n";
    }
  }

  std::string source = "definition(name: \"" + name +
                       "\", namespace: \"fuzz\")\n";
  source += R"(
preferences {
    section("S") {
        input "m1", "capability.motionSensor"
        input "c1", "capability.contactSensor"
        input "p1", "capability.presenceSensor"
        input "t1", "capability.temperatureMeasurement"
        input "sw1", "capability.switch"
        input "sw2", "capability.switch"
        input "lock1", "capability.lock"
    }
}
def installed() {
)";
  const int subs = 1 + static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < subs; ++i) {
    source += "    " + std::string(kTriggers[rng.NextBelow(8)]) + "\n";
  }
  source += "}\ndef handler(evt) {\n" + body + "}\n";
  source += "def later() {\n    sw1.off()\n}\n";
  return source;
}

config::Deployment FuzzHome(int apps) {
  config::DeploymentBuilder b("fuzz home");
  b.ContactPhone("555-0100");
  b.Device("m1", "motionSensor", {"securityMotion"});
  b.Device("c1", "contactSensor", {"frontDoorContact"});
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("t1", "temperatureSensor", {"tempSensor"});
  b.Device("sw1", "smartSwitch", {"light"});
  b.Device("sw2", "smartSwitch", {"light"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  for (int i = 0; i < apps; ++i) {
    const std::string name = "Fuzz App " + std::to_string(i);
    b.App(name)
        .Devices("m1", {"m1"})
        .Devices("c1", {"c1"})
        .Devices("p1", {"p1"})
        .Devices("t1", {"t1"})
        .Devices("sw1", {"sw1"})
        .Devices("sw2", {"sw2"})
        .Devices("lock1", {"lock1"});
  }
  return b.Build();
}

/// Pipeline survival sweep over 20 random 3-app systems.
class FuzzPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipelineTest, RandomAppsCheckWithoutCrashing) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  core::Sanitizer sanitizer(FuzzHome(3));
  for (int i = 0; i < 3; ++i) {
    sanitizer.AddAppSource("Fuzz App " + std::to_string(i),
                           RandomApp(rng, "Fuzz App " + std::to_string(i)));
  }
  core::SanitizerOptions options;
  options.check.max_events = 2;
  options.check.model_failures = GetParam() % 2 == 0;
  core::SanitizerReport report = sanitizer.Check(options);
  // No crash, no rejection, and the search did real work.
  EXPECT_TRUE(report.rejected_apps.empty());
  EXPECT_GT(report.states_explored, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelineTest, ::testing::Range(0, 20));

TEST(DeterminismTest, RepeatedChecksAreIdentical) {
  Rng rng(99);
  core::Sanitizer sanitizer(FuzzHome(2));
  for (int i = 0; i < 2; ++i) {
    sanitizer.AddAppSource("Fuzz App " + std::to_string(i),
                           RandomApp(rng, "Fuzz App " + std::to_string(i)));
  }
  core::SanitizerOptions options;
  options.check.max_events = 3;
  core::SanitizerReport a = sanitizer.Check(options);
  core::SanitizerReport b = sanitizer.Check(options);
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.ViolatedPropertyIds(), b.ViolatedPropertyIds());
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].steps, b.violations[i].steps);
    EXPECT_EQ(a.violations[i].apps, b.violations[i].apps);
    EXPECT_EQ(a.violations[i].occurrences, b.violations[i].occurrences);
  }
}

TEST(DeterminismTest, SchedulingModesAgreeOnVerdicts) {
  // §8: the sequential design found every violation the concurrent model
  // found on small systems.  Spot-check that here.
  Rng rng(7);
  core::Sanitizer sanitizer(FuzzHome(2));
  for (int i = 0; i < 2; ++i) {
    sanitizer.AddAppSource("Fuzz App " + std::to_string(i),
                           RandomApp(rng, "Fuzz App " + std::to_string(i)));
  }
  core::SanitizerOptions sequential;
  sequential.check.max_events = 2;
  core::SanitizerOptions concurrent = sequential;
  concurrent.check.scheduling = model::Scheduling::kConcurrent;
  core::SanitizerReport s = sanitizer.Check(sequential);
  core::SanitizerReport c = sanitizer.Check(concurrent);
  EXPECT_EQ(s.ViolatedPropertyIds(), c.ViolatedPropertyIds());
}

}  // namespace
}  // namespace iotsan
