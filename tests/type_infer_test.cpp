// Anchor-point type inference tests (paper §6), including the paper's
// Fig. 6 example: the Groovy method `onSwitches()` returning
// `switches + onSwitches` must be typed List<Device<switch>> and render
// as STSwitch[] in Java notation.
#include <gtest/gtest.h>

#include "dsl/parser.hpp"
#include "dsl/type_infer.hpp"

namespace iotsan::dsl {
namespace {

TypeInfo Infer(std::string_view methods,
               std::string_view inputs = R"(
    section("S") {
        input "switches", "capability.switch", multiple: true
        input "onSwitches", "capability.switch", multiple: true
        input "sensor", "capability.temperatureMeasurement"
        input "setpoint", "decimal"
        input "minutes", "number", required: false
        input "mode", "enum", options: ["heat", "cool"]
    })") {
  std::string source = "definition(name: \"T\", namespace: \"t\")\n";
  source += "preferences {\n" + std::string(inputs) + "\n}\n";
  source += methods;
  return InferTypes(ParseApp(source));
}

TEST(TypeInferTest, InputDeclTypes) {
  TypeInfo info = Infer("");
  EXPECT_EQ(info.globals.at("switches").ToString(),
            "List<Device<switch>>");
  EXPECT_EQ(info.globals.at("sensor").ToString(),
            "Device<temperatureMeasurement>");
  EXPECT_EQ(info.globals.at("setpoint").ToString(), "Decimal");
  EXPECT_EQ(info.globals.at("minutes").ToString(), "Integer");
  EXPECT_EQ(info.globals.at("mode").ToString(), "String");
}

TEST(TypeInferTest, PaperFig6OnSwitches) {
  // The exact shape of paper Fig. 6a: a method whose body is the Groovy
  // `+` of two device lists; its return type must be inferred as a list
  // of switches and lower to Java's STSwitch[].
  TypeInfo info = Infer(R"(
def onSwitchesMethod() {
    switches + onSwitches
}
)");
  Type ret = info.ReturnType("onSwitchesMethod");
  EXPECT_EQ(ret.ToString(), "List<Device<switch>>");
  EXPECT_EQ(ret.ToJavaString(), "STSwitch[]");
}

TEST(TypeInferTest, LiteralAnchors) {
  TypeInfo info = Infer(R"(
def f() {
    def a = 0
    def b = 2.5
    def c = "text"
    def d = true
    def e = [1, 2]
    return a
}
)");
  EXPECT_EQ(info.LocalType("f", "a").ToString(), "Integer");
  EXPECT_EQ(info.LocalType("f", "b").ToString(), "Decimal");
  EXPECT_EQ(info.LocalType("f", "c").ToString(), "String");
  EXPECT_EQ(info.LocalType("f", "d").ToString(), "Boolean");
  EXPECT_EQ(info.LocalType("f", "e").ToString(), "List<Integer>");
  EXPECT_EQ(info.ReturnType("f").ToString(), "Integer");
}

TEST(TypeInferTest, NumericJoinWidensToDecimal) {
  TypeInfo info = Infer(R"(
def f(flag) {
    def x = 1
    if (flag) {
        x = 2.5
    }
    return x
}
)");
  EXPECT_EQ(info.ReturnType("f").ToString(), "Decimal");
}

TEST(TypeInferTest, CallingContextPropagatesToParams) {
  // §6: argument and return types are inferred from calling contexts.
  TypeInfo info = Infer(R"(
def caller() {
    helper(setpoint)
}
def helper(value) {
    return value
}
)");
  EXPECT_EQ(info.params.at("helper.value").ToString(), "Decimal");
  EXPECT_EQ(info.ReturnType("helper").ToString(), "Decimal");
}

TEST(TypeInferTest, DeviceAttributeReads) {
  TypeInfo info = Infer(R"(
def f() {
    def t = sensor.currentTemperature
    def s = switches.first.currentSwitch
    return t
}
)");
  EXPECT_EQ(info.LocalType("f", "t").ToString(), "Decimal");
  EXPECT_EQ(info.LocalType("f", "s").ToString(), "String");
}

TEST(TypeInferTest, CollectionUtilities) {
  TypeInfo info = Infer(R"(
def f() {
    def found = switches.find { it.currentSwitch == "on" }
    def all = switches.findAll { it.currentSwitch == "on" }
    def n = switches.size()
    def names = switches.collect { it.currentSwitch }
    return found
}
)");
  EXPECT_EQ(info.LocalType("f", "found").ToString(), "Device<switch>");
  EXPECT_EQ(info.LocalType("f", "all").ToString(), "List<Device<switch>>");
  EXPECT_EQ(info.LocalType("f", "n").ToString(), "Integer");
  EXPECT_EQ(info.LocalType("f", "names").ToString(), "List<String>");
}

TEST(TypeInferTest, HandlerParamIsEventLike) {
  TypeInfo info = Infer(R"(
def installed() {
    subscribe(sensor, "temperature", tempHandler)
}
def tempHandler(evt) {
    def v = evt.value
    def n = evt.numericValue
    return v
}
)");
  EXPECT_EQ(info.LocalType("tempHandler", "v").ToString(), "String");
  EXPECT_EQ(info.LocalType("tempHandler", "n").ToString(), "Decimal");
}

TEST(TypeInferTest, StateFieldsTracked) {
  TypeInfo info = Infer(R"(
def f() {
    state.count = 1
    state.label = "x"
}
)");
  EXPECT_EQ(info.globals.at("state.count").ToString(), "Integer");
  EXPECT_EQ(info.globals.at("state.label").ToString(), "String");
}

TEST(TypeInferTest, HeterogeneousCollectionReported) {
  // Paper §11 limitation 5: heterogeneous collections are a translation
  // error, surfaced as a problem.
  TypeInfo info = Infer(R"(
def f() {
    def mixed = [1, "two"]
    return mixed
}
)");
  ASSERT_FALSE(info.problems.empty());
  EXPECT_NE(info.problems[0].find("heterogeneous collection"),
            std::string::npos);
}

TEST(TypeInferTest, UnknownFunctionReported) {
  TypeInfo info = Infer(R"(
def f() {
    frobnicate(1)
}
)");
  ASSERT_FALSE(info.problems.empty());
  EXPECT_NE(info.problems[0].find("unknown function 'frobnicate'"),
            std::string::npos);
}

TEST(TypeInferTest, PlatformApiReturnTypes) {
  TypeInfo info = Infer(R"(
def f() {
    def t = now()
    def b = timeOfDayIsBetween("22:00", "06:00")
    def m = getSunriseAndSunset()
    return t
}
)");
  EXPECT_EQ(info.LocalType("f", "t").ToString(), "Integer");
  EXPECT_EQ(info.LocalType("f", "b").ToString(), "Boolean");
  EXPECT_EQ(info.LocalType("f", "m").ToString(), "Map");
}

TEST(TypeInferTest, TernaryJoins) {
  TypeInfo info = Infer(R"(
def f(flag) {
    def x = flag ? 1 : 2.0
    def y = minutes ?: 5
    return x
}
)");
  EXPECT_EQ(info.LocalType("f", "x").ToString(), "Decimal");
  EXPECT_EQ(info.LocalType("f", "y").ToString(), "Integer");
}

TEST(TypeInferTest, ConvergesQuickly) {
  TypeInfo info = Infer(R"(
def a() { return b() }
def b() { return c() }
def c() { return 42 }
)");
  EXPECT_EQ(info.ReturnType("a").ToString(), "Integer");
  EXPECT_LE(info.iterations, 8);
}

TEST(TypeInferTest, JavaRenderings) {
  EXPECT_EQ(Type::Integer().ToJavaString(), "int");
  EXPECT_EQ(Type::Decimal().ToJavaString(), "double");
  EXPECT_EQ(Type::Boolean().ToJavaString(), "boolean");
  EXPECT_EQ(Type::String().ToJavaString(), "String");
  EXPECT_EQ(Type::Device("lock").ToJavaString(), "STLock");
  EXPECT_EQ(Type::ListOf(Type::Device("lock")).ToJavaString(), "STLock[]");
  EXPECT_EQ(Type::Dynamic().ToJavaString(), "Object");
}

TEST(TypeTest, JoinLattice) {
  EXPECT_EQ(Type::Join(Type::Integer(), Type::Integer()).ToString(),
            "Integer");
  EXPECT_EQ(Type::Join(Type::Integer(), Type::Decimal()).ToString(),
            "Decimal");
  EXPECT_EQ(Type::Join(Type::Integer(), Type::String()).ToString(), "def");
  EXPECT_EQ(Type::Join(Type::Dynamic(), Type::String()).ToString(),
            "String");
  EXPECT_EQ(Type::Join(Type::Void(), Type::String()).ToString(), "String");
  EXPECT_EQ(Type::Join(Type::ListOf(Type::Integer()),
                       Type::ListOf(Type::Decimal()))
                .ToString(),
            "List<Decimal>");
}

}  // namespace
}  // namespace iotsan::dsl
