// Property-language and built-in property tests (paper §8, Table 4).
#include <gtest/gtest.h>

#include <map>

#include "dsl/parser.hpp"
#include "props/eval.hpp"
#include "props/property.hpp"
#include "util/error.hpp"

namespace iotsan::props {
namespace {

/// A scriptable StateView for evaluator tests.
class FakeState final : public StateView {
 public:
  struct FakeDevice {
    std::vector<std::string> roles;
    std::map<std::string, std::string> attrs;
    std::map<std::string, double> numeric;
    bool online = true;
  };

  std::vector<FakeDevice> devices;
  std::string mode = "Home";

  std::vector<int> DevicesWithRole(const std::string& role) const override {
    std::vector<int> out;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      for (const std::string& r : devices[i].roles) {
        if (r == role) out.push_back(static_cast<int>(i));
      }
    }
    return out;
  }
  std::optional<std::string> AttributeValue(
      int device, const std::string& attr) const override {
    const auto& attrs = devices[static_cast<std::size_t>(device)].attrs;
    auto it = attrs.find(attr);
    if (it == attrs.end()) return std::nullopt;
    return it->second;
  }
  std::optional<double> NumericValue(int device,
                                     const std::string& attr) const override {
    const auto& nums = devices[static_cast<std::size_t>(device)].numeric;
    auto it = nums.find(attr);
    if (it == nums.end()) return std::nullopt;
    return it->second;
  }
  std::string LocationMode() const override { return mode; }
  bool DeviceOnline(int device) const override {
    return devices[static_cast<std::size_t>(device)].online;
  }
};

bool Eval(const std::string& expr, const FakeState& state) {
  return EvalPropertyExpr(*dsl::ParseExpression(expr), state);
}

TEST(PropEvalTest, ModeIdentifier) {
  FakeState s;
  s.mode = "Away";
  EXPECT_TRUE(Eval("mode == \"Away\"", s));
  EXPECT_FALSE(Eval("mode == \"Home\"", s));
  EXPECT_TRUE(Eval("mode != \"Home\"", s));
}

TEST(PropEvalTest, AnyQuantifier) {
  FakeState s;
  s.devices.push_back({{"light"}, {{"switch", "off"}}, {}, true});
  s.devices.push_back({{"light"}, {{"switch", "on"}}, {}, true});
  EXPECT_TRUE(Eval(R"(any("light", "switch") == "on")", s));
  EXPECT_FALSE(Eval(R"(all("light", "switch") == "on")", s));
  EXPECT_TRUE(Eval(R"(any("light", "switch") == "off")", s));
}

TEST(PropEvalTest, AllQuantifier) {
  FakeState s;
  s.devices.push_back({{"presence"}, {{"presence", "notpresent"}}, {}, true});
  s.devices.push_back({{"presence"}, {{"presence", "notpresent"}}, {}, true});
  EXPECT_TRUE(Eval(R"(all("presence", "presence") == "notpresent")", s));
  s.devices[1].attrs["presence"] = "present";
  EXPECT_FALSE(Eval(R"(all("presence", "presence") == "notpresent")", s));
  EXPECT_TRUE(Eval(R"(any("presence", "presence") == "present")", s));
}

TEST(PropEvalTest, VacuousQuantification) {
  FakeState s;  // no devices at all
  EXPECT_TRUE(Eval(R"(all("ghost", "switch") == "on")", s));
  EXPECT_FALSE(Eval(R"(any("ghost", "switch") == "on")", s));
}

TEST(PropEvalTest, NumericComparisons) {
  FakeState s;
  s.devices.push_back({{"tempSensor"}, {}, {{"temperature", 60}}, true});
  EXPECT_TRUE(Eval(R"(any("tempSensor", "temperature") < 65)", s));
  EXPECT_FALSE(Eval(R"(any("tempSensor", "temperature") > 80)", s));
  EXPECT_TRUE(Eval(R"(any("tempSensor", "temperature") >= 60)", s));
  // Mirrored comparison (scalar on the left).
  EXPECT_TRUE(Eval(R"(65 > any("tempSensor", "temperature"))", s));
}

TEST(PropEvalTest, CountFunction) {
  FakeState s;
  s.devices.push_back({{"light"}, {{"switch", "on"}}, {}, true});
  s.devices.push_back({{"light"}, {{"switch", "on"}}, {}, true});
  s.devices.push_back({{"light"}, {{"switch", "off"}}, {}, true});
  EXPECT_TRUE(Eval(R"(count("light", "switch", "on") == 2)", s));
  EXPECT_TRUE(Eval(R"(count("light", "switch", "off") < 2)", s));
}

TEST(PropEvalTest, OnlineFunction) {
  FakeState s;
  s.devices.push_back({{"presence"}, {}, {}, true});
  s.devices.push_back({{"presence"}, {}, {}, false});
  EXPECT_FALSE(Eval(R"(online("presence"))", s));
  EXPECT_TRUE(Eval(R"(offline("presence"))", s));
  s.devices[1].online = true;
  EXPECT_TRUE(Eval(R"(online("presence"))", s));
}

TEST(PropEvalTest, ExistsFunction) {
  FakeState s;
  s.devices.push_back({{"camera"}, {}, {}, true});
  EXPECT_TRUE(Eval(R"(exists("camera"))", s));
  EXPECT_FALSE(Eval(R"(exists("drone"))", s));
}

TEST(PropEvalTest, BooleanStructure) {
  FakeState s;
  s.mode = "Night";
  s.devices.push_back({{"mainDoorLock"}, {{"lock", "unlocked"}}, {}, true});
  EXPECT_FALSE(Eval(
      R"(!(mode == "Night" && any("mainDoorLock", "lock") == "unlocked"))",
      s));
  s.devices[0].attrs["lock"] = "locked";
  EXPECT_TRUE(Eval(
      R"(!(mode == "Night" && any("mainDoorLock", "lock") == "unlocked"))",
      s));
}

TEST(PropEvalTest, DevicesMissingAttributeAreSkipped) {
  FakeState s;
  s.devices.push_back({{"light"}, {{"switch", "on"}}, {}, true});
  s.devices.push_back({{"light"}, {}, {}, true});  // no switch attribute
  EXPECT_TRUE(Eval(R"(all("light", "switch") == "on")", s));
}

TEST(PropEvalTest, MalformedExpressionsThrow) {
  FakeState s;
  EXPECT_THROW(Eval("unknownIdent == 1", s), SemanticError);
  EXPECT_THROW(Eval("any(\"r\")", s), SemanticError);
  EXPECT_THROW(Eval("frobnicate(\"r\")", s), SemanticError);
  EXPECT_THROW(Eval("1 + 2", s), SemanticError);  // not boolean
  EXPECT_THROW(Eval(R"(any("a", "b") == all("c", "d"))", s), SemanticError);
}

TEST(BuiltinPropertiesTest, CountsMatchThePaper) {
  const auto& props = BuiltinProperties();
  // 45 properties: 38 safe-physical-state invariants + 7 monitors (§8).
  EXPECT_EQ(props.size(), 45u);
  std::map<std::string, int> by_category;
  int invariants = 0;
  for (const Property& p : props) {
    if (p.kind == PropertyKind::kInvariant) {
      ++invariants;
      ++by_category[p.category];
    }
  }
  EXPECT_EQ(invariants, 38);
  // Table 4's category counts.
  EXPECT_EQ(by_category["Thermostat, AC, and Heater"], 5);
  EXPECT_EQ(by_category["Lock and door control"], 8);
  EXPECT_EQ(by_category["Location mode"], 3);
  EXPECT_EQ(by_category["Security and alarming"], 14);
  EXPECT_EQ(by_category["Water and sprinkler"], 3);
  EXPECT_EQ(by_category["Others"], 5);
}

TEST(BuiltinPropertiesTest, MonitorsPresent) {
  EXPECT_EQ(FindBuiltinProperty("P39")->kind, PropertyKind::kNoConflict);
  EXPECT_EQ(FindBuiltinProperty("P40")->kind, PropertyKind::kNoRepeat);
  EXPECT_EQ(FindBuiltinProperty("P41")->kind, PropertyKind::kNoNetworkLeak);
  EXPECT_EQ(FindBuiltinProperty("P42")->kind, PropertyKind::kSmsRecipient);
  EXPECT_EQ(FindBuiltinProperty("P43")->kind, PropertyKind::kNoSensitiveCmd);
  EXPECT_EQ(FindBuiltinProperty("P44")->kind, PropertyKind::kNoFakeEvent);
  EXPECT_EQ(FindBuiltinProperty("P45")->kind, PropertyKind::kRobustness);
  EXPECT_EQ(FindBuiltinProperty("P99"), nullptr);
}

TEST(RolesReferencedTest, ExtractsAllRoles) {
  Property p = MakeInvariant("X", "c", "d",
                             R"(!(any("roleA", "x") == "1"
                                 && all("roleB", "y") == "2"
                                 && count("roleC", "z", "v") > 0))");
  EXPECT_EQ(p.roles,
            (std::vector<std::string>{"roleA", "roleB", "roleC"}));
  EXPECT_EQ(p.universal_roles, (std::vector<std::string>{"roleB"}));
}

TEST(ReferencesModeTest, DetectsModeReads) {
  EXPECT_TRUE(ReferencesMode(*dsl::ParseExpression("mode == \"Away\"")));
  EXPECT_FALSE(
      ReferencesMode(*dsl::ParseExpression(R"(any("a", "b") == "c")")));
}

/// Every built-in invariant must parse, reference at least one role or
/// the mode, and be satisfied by an "everything quiet" state.
class BuiltinInvariantTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BuiltinInvariantTest, ParsesAndHoldsInQuietState) {
  const Property& p = *FindBuiltinProperty(GetParam());
  ASSERT_NO_THROW(p.ParsedExpression());
  EXPECT_TRUE(!p.roles.empty() || ReferencesMode(p.ParsedExpression()))
      << p.id;

  // A quiet home: someone present, everything off/closed/locked/clear,
  // comfortable readings, mode Home.  No invariant may fire here.
  FakeState s;
  s.mode = "Home";
  FakeState::FakeDevice quiet;
  quiet.roles = p.roles;  // one device carrying every referenced role
  quiet.attrs = {{"switch", "off"},   {"lock", "locked"},
                 {"door", "closed"},  {"contact", "closed"},
                 {"presence", "present"}, {"motion", "inactive"},
                 {"smoke", "clear"},  {"carbonMonoxide", "clear"},
                 {"water", "dry"},    {"alarm", "off"},
                 {"valve", "open"},   {"windowShade", "closed"},
                 {"status", "stopped"}, {"image", "none"},
                 {"sleeping", "notSleeping"}, {"call", "idle"}};
  quiet.numeric = {{"temperature", 70}, {"humidity", 50},
                   {"illuminance", 300}, {"soilMoisture", 40}};
  s.devices.push_back(quiet);
  EXPECT_TRUE(EvalPropertyExpr(p.ParsedExpression(), s))
      << p.id << ": " << p.description;
}

std::vector<std::string> InvariantIds() {
  std::vector<std::string> ids;
  for (const Property& p : BuiltinProperties()) {
    if (p.kind == PropertyKind::kInvariant) ids.push_back(p.id);
  }
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllInvariants, BuiltinInvariantTest,
                         ::testing::ValuesIn(InvariantIds()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace iotsan::props
