// Validates the bundled experiment workloads: every expert group must
// build (all 150 app configurations resolve against their devices) and
// produce the violation classes Table 5 reports; volunteer groups must be
// configurable.
#include <gtest/gtest.h>

#include <set>

#include "attrib/config_enum.hpp"
#include "core/sanitizer.hpp"
#include "corpus/corpus.hpp"
#include "corpus/groups.hpp"
#include "dsl/parser.hpp"

namespace iotsan {
namespace {

core::SanitizerReport CheckGroup(const corpus::SystemUnderTest& sut,
                                 int max_events, bool failures = false) {
  core::Sanitizer sanitizer(sut.deployment);
  for (const auto& [name, source] : sut.extra_sources) {
    sanitizer.AddAppSource(name, source);
  }
  core::SanitizerOptions options;
  options.check.max_events = max_events;
  options.check.model_failures = failures;
  return sanitizer.Check(options);
}

TEST(GroupsTest, SixExpertGroupsWith150Apps) {
  const auto& groups = corpus::ExpertGroups();
  ASSERT_EQ(groups.size(), 6u);
  int total = 0;
  for (const corpus::SystemUnderTest& sut : groups) {
    EXPECT_EQ(sut.app_count(), 25) << sut.deployment.name;
    total += sut.app_count();
  }
  EXPECT_EQ(total, 150);
}

TEST(GroupsTest, AllExpertGroupsBuildAndCheck) {
  for (const corpus::SystemUnderTest& sut : corpus::ExpertGroups()) {
    SCOPED_TRACE(sut.deployment.name);
    core::SanitizerReport report = CheckGroup(sut, /*max_events=*/1);
    EXPECT_TRUE(report.rejected_apps.empty())
        << report.rejected_apps.front();
    EXPECT_GT(report.states_explored, 0u);
  }
}

TEST(GroupsTest, Group1FindsConflictRepeatAndUnsafeState) {
  const corpus::SystemUnderTest& g1 = corpus::ExpertGroups()[0];
  core::SanitizerReport report = CheckGroup(g1, /*max_events=*/2);
  EXPECT_TRUE(report.HasViolation("P39")) << "conflicting commands";
  EXPECT_TRUE(report.HasViolation("P40")) << "repeated commands";
  EXPECT_TRUE(report.HasViolation("P06") || report.HasViolation("P10"))
      << "door-unlock unsafe state";
}

TEST(GroupsTest, Group2FindsHvacViolations) {
  core::SanitizerReport report =
      CheckGroup(corpus::ExpertGroups()[1], /*max_events=*/2);
  // It's Too Cold turns the heater on and never off; with heat + cool
  // apps on one sensor, P03/P04-style HVAC states are reachable.
  EXPECT_FALSE(report.violations.empty());
  bool hvac = false;
  for (const checker::Violation& v : report.violations) {
    hvac = hvac || v.category == "Thermostat, AC, and Heater";
  }
  EXPECT_TRUE(hvac);
}

TEST(GroupsTest, Group5FindsNetworkLeak) {
  core::SanitizerReport report =
      CheckGroup(corpus::ExpertGroups()[4], /*max_events=*/1);
  EXPECT_TRUE(report.HasViolation("P41"))
      << "Weather Logger / Remote Status Reporter use httpPost";
}

TEST(GroupsTest, DependencyAnalysisShrinksEveryGroup) {
  for (const corpus::SystemUnderTest& sut : corpus::ExpertGroups()) {
    SCOPED_TRACE(sut.deployment.name);
    core::SanitizerReport report = CheckGroup(sut, /*max_events=*/1);
    EXPECT_GT(report.scale.original_size, 0);
    EXPECT_GT(report.scale.new_size, 0);
    EXPECT_GE(report.scale.ratio, 1.0);
    EXPECT_LE(report.scale.new_size, report.scale.original_size);
  }
}

TEST(GroupsTest, VolunteerGroupsAreConfigurable) {
  const auto& groups = corpus::VolunteerGroups();
  ASSERT_EQ(groups.size(), 10u);
  Rng rng(2018);
  for (const corpus::VolunteerGroup& group : groups) {
    SCOPED_TRACE(group.name);
    for (const std::string& app_name : group.apps) {
      const corpus::CorpusApp* app = corpus::FindApp(app_name);
      ASSERT_NE(app, nullptr) << app_name;
      dsl::App parsed = dsl::ParseApp(app->source, app_name);
      config::AppConfig cfg =
          attrib::GenerateVolunteerConfig(parsed, group.device_pool, rng);
      // Every required device input must have been bound.
      for (const dsl::InputDecl& input : parsed.inputs) {
        if (!input.required) continue;
        EXPECT_TRUE(cfg.inputs.count(input.name))
            << app_name << " input " << input.name;
      }
    }
  }
}

TEST(GroupsTest, FailureModelingAddsViolations) {
  // Paper §10.2: device/communication failures cause violations of
  // additional properties.
  const corpus::SystemUnderTest& g1 = corpus::ExpertGroups()[0];
  core::SanitizerReport base = CheckGroup(g1, 2, /*failures=*/false);
  core::SanitizerReport with_failures = CheckGroup(g1, 2, /*failures=*/true);
  std::set<std::string> base_ids;
  for (const auto& v : base.violations) base_ids.insert(v.property_id);
  int extra = 0;
  for (const auto& v : with_failures.violations) {
    if (!base_ids.count(v.property_id)) ++extra;
  }
  EXPECT_GT(extra, 0) << "failures should expose new violated properties";
}

}  // namespace
}  // namespace iotsan
