// Model-checker tests: state stores, search bounds, budgets, traces, and
// the depth-in-state fidelity option (paper §2.3/§8).
#include <gtest/gtest.h>

#include "checker/checker.hpp"
#include "checker/state_store.hpp"
#include "config/builder.hpp"
#include "ir/analyzer.hpp"

namespace iotsan::checker {
namespace {

// ---- Stores ------------------------------------------------------------------

std::vector<std::uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(ExhaustiveStoreTest, ExactMembership) {
  ExhaustiveStore store;
  EXPECT_FALSE(store.TestAndInsert(Bytes({1, 2, 3})));
  EXPECT_TRUE(store.TestAndInsert(Bytes({1, 2, 3})));
  EXPECT_FALSE(store.TestAndInsert(Bytes({1, 2, 4})));
  EXPECT_FALSE(store.TestAndInsert(Bytes({})));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_GT(store.memory_bytes(), 0u);
}

TEST(BitstateStoreTest, BasicMembership) {
  BitstateStore store(1 << 16);
  EXPECT_FALSE(store.TestAndInsert(Bytes({1, 2, 3})));
  EXPECT_TRUE(store.TestAndInsert(Bytes({1, 2, 3})));
  EXPECT_FALSE(store.TestAndInsert(Bytes({9, 9})));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.memory_bytes(), (1u << 16) / 8);
  EXPECT_GT(store.Occupancy(), 0.0);
}

TEST(BitstateStoreTest, NoFalsePositivesWhenSparse) {
  BitstateStore store(1 << 20);
  int collisions = 0;
  for (int i = 0; i < 5000; ++i) {
    if (store.TestAndInsert(Bytes({i & 0xFF, (i >> 8) & 0xFF, 7}))) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(BitstateStoreTest, SaturationCausesFalsePositives) {
  // Spin's known BITSTATE trade-off: a tiny bit field saturates.
  BitstateStore store(64, 3);
  int collisions = 0;
  for (int i = 0; i < 200; ++i) {
    if (store.TestAndInsert(Bytes({i & 0xFF, (i >> 8) & 0xFF}))) {
      ++collisions;
    }
  }
  EXPECT_GT(collisions, 0);
  EXPECT_GT(store.Occupancy(), 0.3);
}

// ---- Search ------------------------------------------------------------------

constexpr const char* kUnlockApp = R"(
definition(name: "UnlockOnAway", namespace: "t")
preferences {
    section("S") {
        input "p1", "capability.presenceSensor"
        input "lock1", "capability.lock"
    }
}
def installed() {
    subscribe(p1, "presence.notpresent", handler)
}
def handler(evt) {
    lock1.unlock()
}
)";

model::SystemModel UnlockModel() {
  config::DeploymentBuilder b("home");
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("UnlockOnAway").Devices("p1", {"p1"}).Devices("lock1", {"lock1"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kUnlockApp, "UnlockOnAway"));
  return model::SystemModel(b.Build(), std::move(apps));
}

TEST(CheckerTest, FindsInvariantViolationWithTrace) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  CheckResult result = checker.Run(options);

  ASSERT_TRUE(result.HasViolation("P06"));
  const Violation& v = *result.Find("P06");
  EXPECT_EQ(v.kind, props::PropertyKind::kInvariant);
  EXPECT_EQ(v.depth, 1);
  EXPECT_EQ(v.apps, (std::vector<std::string>{"UnlockOnAway"}));
  ASSERT_FALSE(v.steps.empty());
  const std::vector<std::string> trace = v.TraceLines();
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.front().find("notpresent"), std::string::npos);
  EXPECT_NE(trace.back().find("assertion violated"), std::string::npos);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.states_explored, 0u);
  EXPECT_GT(result.transitions, 0u);
}

TEST(CheckerTest, DepthZeroExploresNothing) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 0;
  CheckResult result = checker.Run(options);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.transitions, 0u);
}

TEST(CheckerTest, StopAtFirstViolation) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 3;
  options.stop_at_first_violation = true;
  CheckResult result = checker.Run(options);
  EXPECT_EQ(result.violations.size(), 1u);
  EXPECT_FALSE(result.completed);
}

TEST(CheckerTest, StateBudgetStopsSearch) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 8;
  options.max_states = 3;
  CheckResult result = checker.Run(options);
  EXPECT_FALSE(result.completed);
  EXPECT_LE(result.states_explored, 3u);
}

TEST(CheckerTest, OccurrencesCountRevisits) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 3;
  CheckResult result = checker.Run(options);
  ASSERT_TRUE(result.HasViolation("P06"));
  // The unsafe state recurs along many permutations at depth 3.
  EXPECT_GT(result.Find("P06")->occurrences, 1u);
}

TEST(CheckerTest, DepthInStateControlsPruning) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions with_depth;
  with_depth.max_events = 6;
  with_depth.include_depth_in_state = true;
  CheckOptions sans_depth;
  sans_depth.max_events = 6;
  sans_depth.include_depth_in_state = false;
  CheckResult a = checker.Run(with_depth);
  CheckResult b = checker.Run(sans_depth);
  // Same verdicts, but the Spin-faithful mode distinguishes states per
  // depth and therefore expands strictly more.
  EXPECT_EQ(a.HasViolation("P06"), b.HasViolation("P06"));
  EXPECT_GT(a.states_explored, b.states_explored);
}

TEST(CheckerTest, BitstateModeFindsSameViolations) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions exhaustive;
  exhaustive.max_events = 4;
  CheckOptions bitstate;
  bitstate.max_events = 4;
  bitstate.store = StoreKind::kBitstate;
  bitstate.bitstate_bits = 1 << 20;
  CheckResult a = checker.Run(exhaustive);
  CheckResult b = checker.Run(bitstate);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.states_explored, b.states_explored);
}

TEST(CheckerTest, FormatViolationIsReadable) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  CheckResult result = checker.Run(options);
  std::string report = FormatViolation(*result.Find("P06"));
  EXPECT_NE(report.find("violated property P06"), std::string::npos);
  EXPECT_NE(report.find("UnlockOnAway"), std::string::npos);
  EXPECT_NE(report.find("counter-example"), std::string::npos);
}

TEST(CheckerTest, MonitorViolationsCarryFailureLabels) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 1;
  options.model_failures = true;
  CheckResult result = checker.Run(options);
  // The lost unlock command with no notification violates robustness.
  ASSERT_TRUE(result.HasViolation("P45"));
  EXPECT_FALSE(result.Find("P45")->failure.empty());
}

// ---- Parallel search (--jobs) ------------------------------------------------

/// Every caller-visible field of the report must match between a serial
/// and a parallel run: the parallel search is canonicalized to be
/// indistinguishable from jobs=1 (docs/performance.md).
void ExpectSameReport(const CheckResult& serial, const CheckResult& parallel) {
  EXPECT_EQ(serial.states_explored, parallel.states_explored);
  EXPECT_EQ(serial.states_matched, parallel.states_matched);
  EXPECT_EQ(serial.transitions, parallel.transitions);
  EXPECT_EQ(serial.cascade_drains, parallel.cascade_drains);
  EXPECT_EQ(serial.completed, parallel.completed);
  EXPECT_EQ(serial.depth_histogram, parallel.depth_histogram);
  ASSERT_EQ(serial.violations.size(), parallel.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    const Violation& a = serial.violations[i];
    const Violation& b = parallel.violations[i];
    EXPECT_EQ(a.property_id, b.property_id);
    EXPECT_EQ(a.occurrences, b.occurrences);
    EXPECT_EQ(a.apps, b.apps);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.failure, b.failure);
    EXPECT_EQ(a.detail, b.detail);
    EXPECT_EQ(a.TraceLines(), b.TraceLines());
    EXPECT_EQ(FormatViolation(a), FormatViolation(b));
  }
}

TEST(ParallelCheckerTest, JobsFourMatchesSerial) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions serial_options;
  serial_options.max_events = 3;
  CheckOptions parallel_options = serial_options;
  parallel_options.jobs = 4;
  CheckResult serial = checker.Run(serial_options);
  CheckResult parallel = checker.Run(parallel_options);
  EXPECT_EQ(parallel.jobs, 4);
  EXPECT_GT(parallel.parallel_branches, 0u);
  ExpectSameReport(serial, parallel);
  // Per-lane state counts partition the total.
  std::uint64_t lane_total = 0;
  for (std::uint64_t n : parallel.worker_states_explored) lane_total += n;
  EXPECT_EQ(lane_total, parallel.states_explored);
}

TEST(ParallelCheckerTest, JobsFourMatchesSerialWithFailures) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions serial_options;
  serial_options.max_events = 2;
  serial_options.model_failures = true;
  CheckOptions parallel_options = serial_options;
  parallel_options.jobs = 4;
  ExpectSameReport(checker.Run(serial_options), checker.Run(parallel_options));
}

TEST(ParallelCheckerTest, ParallelTraceReplays) {
  model::SystemModel model = UnlockModel();
  Checker checker(model);
  CheckOptions options;
  options.max_events = 3;
  options.jobs = 4;
  CheckResult result = checker.Run(options);
  ASSERT_TRUE(result.HasViolation("P06"));
  // The canonical counter-example from a parallel run re-executes
  // deterministically, like any serial trace.
  ViolationArtifact artifact =
      MakeArtifact(*result.Find("P06"), options, "home", "hash");
  ReplayResult replay = checker.Replay(artifact);
  EXPECT_TRUE(replay.reproduced) << replay.message;
}

}  // namespace
}  // namespace iotsan::checker
