// Static-analysis tests: input/output event extraction per handler
// (paper §5 "Extracting input/output events").
#include <gtest/gtest.h>

#include "ir/analyzer.hpp"

namespace iotsan::ir {
namespace {

AnalyzedApp Analyze(const std::string& body) {
  return AnalyzeSource("definition(name: \"T\", namespace: \"t\")\n" + body,
                       "T");
}

TEST(AnalyzerTest, SubscriptionExtraction) {
  AnalyzedApp app = Analyze(R"(
preferences {
    section("S") {
        input "motion1", "capability.motionSensor"
        input "sw", "capability.switch", multiple: true
    }
}
def installed() {
    subscribe(motion1, "motion.active", onMotion)
    subscribe(sw, "switch", onSwitch)
    subscribe(app, appTouch)
    subscribe(location, "mode", onMode)
}
def onMotion(evt) { }
def onSwitch(evt) { }
def appTouch(evt) { }
def onMode(evt) { }
)");
  ASSERT_EQ(app.subscriptions.size(), 4u);
  EXPECT_EQ(app.subscriptions[0].scope, EventScope::kDevice);
  EXPECT_EQ(app.subscriptions[0].input, "motion1");
  EXPECT_EQ(app.subscriptions[0].attribute, "motion");
  EXPECT_EQ(app.subscriptions[0].value, "active");
  EXPECT_EQ(app.subscriptions[1].value, "");  // any value
  EXPECT_EQ(app.subscriptions[2].scope, EventScope::kAppTouch);
  EXPECT_EQ(app.subscriptions[3].scope, EventScope::kLocationMode);
}

TEST(AnalyzerTest, HandlerInterfaceMatchesTable2) {
  // Brighten Dark Places' shape from the paper's Table 2, row 0.
  AnalyzedApp app = Analyze(R"(
preferences {
    section("S") {
        input "contact1", "capability.contactSensor"
        input "luminance1", "capability.illuminanceMeasurement"
        input "switches", "capability.switch", multiple: true
    }
}
def installed() {
    subscribe(contact1, "contact.open", contactOpenHandler)
}
def contactOpenHandler(evt) {
    if (luminance1.currentIlluminance < 100) {
        switches.on()
    }
}
)");
  ASSERT_EQ(app.handlers.size(), 1u);
  const HandlerInfo& h = app.handlers[0];
  EXPECT_EQ(h.name, "contactOpenHandler");
  // Inputs: the subscription plus the illuminance state read.
  ASSERT_EQ(h.inputs.size(), 2u);
  EXPECT_EQ(h.inputs[0].ToString(), "contact/open");
  EXPECT_EQ(h.inputs[1].ToString(), "illuminance/\"...\"");
  // Output: switch/on.
  ASSERT_EQ(h.outputs.size(), 1u);
  EXPECT_EQ(h.outputs[0].ToString(), "switch/on");
}

TEST(AnalyzerTest, OutputsThroughCallGraph) {
  AnalyzedApp app = Analyze(R"(
preferences {
    section("S") {
        input "lock1", "capability.lock"
        input "p1", "capability.presenceSensor"
    }
}
def installed() {
    subscribe(p1, "presence", handler)
}
def handler(evt) {
    helperA()
}
def helperA() {
    helperB()
}
def helperB() {
    lock1.unlock()
}
)");
  ASSERT_EQ(app.handlers.size(), 1u);
  ASSERT_EQ(app.handlers[0].outputs.size(), 1u);
  EXPECT_EQ(app.handlers[0].outputs[0].ToString(), "lock/unlocked");
}

TEST(AnalyzerTest, CommandsThroughClosuresAndAliases) {
  AnalyzedApp app = Analyze(R"(
preferences {
    section("S") {
        input "switches", "capability.switch", multiple: true
        input "m1", "capability.motionSensor"
    }
}
def installed() {
    subscribe(m1, "motion.active", handler)
}
def handler(evt) {
    def mine = switches
    mine.each { it.off() }
}
)");
  ASSERT_EQ(app.handlers.size(), 1u);
  ASSERT_EQ(app.handlers[0].outputs.size(), 1u);
  EXPECT_EQ(app.handlers[0].outputs[0].ToString(), "switch/off");
  EXPECT_EQ(app.handlers[0].outputs[0].input, "switches");
}

TEST(AnalyzerTest, EvtDeviceCommandsResolveToSubscribedInput) {
  AnalyzedApp app = Analyze(R"(
preferences {
    section("S") {
        input "switches", "capability.switch", multiple: true
    }
}
def installed() {
    subscribe(switches, "switch.on", handler)
}
def handler(evt) {
    evt.device.off()
}
)");
  ASSERT_EQ(app.handlers[0].outputs.size(), 1u);
  EXPECT_EQ(app.handlers[0].outputs[0].input, "switches");
  EXPECT_EQ(app.handlers[0].outputs[0].ToString(), "switch/off");
}

TEST(AnalyzerTest, SchedulesExtracted) {
  AnalyzedApp app = Analyze(R"(
preferences {
    section("S") {
        input "sw", "capability.switch"
    }
}
def installed() {
    schedule("0 0 22 * * ?", nightly)
    runIn(600, delayed)
}
def nightly() { sw.off() }
def delayed() { sw.on() }
)");
  ASSERT_EQ(app.schedules.size(), 2u);
  EXPECT_TRUE(app.schedules[0].recurring);
  EXPECT_EQ(app.schedules[0].handler, "nightly");
  EXPECT_FALSE(app.schedules[1].recurring);
  EXPECT_EQ(app.schedules[1].delay_seconds, 600);
  // Scheduled handlers are vertices with a time input.
  const HandlerInfo* nightly = app.FindHandler("nightly");
  ASSERT_NE(nightly, nullptr);
  ASSERT_EQ(nightly->inputs.size(), 1u);
  EXPECT_EQ(nightly->inputs[0].scope, EventScope::kTime);
}

TEST(AnalyzerTest, ApiUsesRecorded) {
  AnalyzedApp app = Analyze(R"(
preferences {
    section("S") {
        input "p1", "capability.presenceSensor"
        input "phone", "phone"
    }
}
def installed() {
    subscribe(p1, "presence", handler)
}
def handler(evt) {
    sendSms(phone, "hello")
    sendSms("555-HARDCODED", "exfil")
    sendPush("note")
    httpPost("http://x.example", "data")
    unsubscribe()
    sendEvent(name: "smoke", value: "detected")
}
)");
  ASSERT_EQ(app.api_uses.size(), 6u);
  EXPECT_EQ(app.api_uses[0].kind, ApiUseKind::kSms);
  EXPECT_EQ(app.api_uses[0].recipient, "phone");
  EXPECT_FALSE(app.api_uses[0].recipient_is_literal);
  EXPECT_EQ(app.api_uses[1].recipient, "555-HARDCODED");
  EXPECT_TRUE(app.api_uses[1].recipient_is_literal);
  EXPECT_EQ(app.api_uses[2].kind, ApiUseKind::kPush);
  EXPECT_EQ(app.api_uses[3].kind, ApiUseKind::kHttp);
  EXPECT_EQ(app.api_uses[4].kind, ApiUseKind::kUnsubscribe);
  EXPECT_EQ(app.api_uses[5].kind, ApiUseKind::kFakeEvent);
  // The fake event also appears as an output pattern.
  bool smoke_output = false;
  for (const HandlerInfo& h : app.handlers) {
    for (const EventPattern& out : h.outputs) {
      smoke_output = smoke_output || out.ToString() == "smoke/detected";
    }
  }
  EXPECT_TRUE(smoke_output);
}

TEST(AnalyzerTest, DynamicDiscoveryDetected) {
  AnalyzedApp app = Analyze(R"(
def installed() {
    subscribe(app, appTouch)
}
def appTouch(evt) {
    def all = getAllDevices()
    all.each { it.off() }
}
)");
  EXPECT_TRUE(app.dynamic_device_discovery);
}

TEST(AnalyzerTest, LocationModeOutputs) {
  AnalyzedApp app = Analyze(R"(
preferences {
    section("S") {
        input "p1", "capability.presenceSensor"
        input "awayMode", "mode"
    }
}
def installed() {
    subscribe(p1, "presence.notpresent", handler)
}
def handler(evt) {
    setLocationMode(awayMode)
}
)");
  ASSERT_EQ(app.handlers[0].outputs.size(), 1u);
  EXPECT_EQ(app.handlers[0].outputs[0].scope, EventScope::kLocationMode);
}

TEST(AnalyzerTest, ProblemsForBadSubscriptions) {
  AnalyzedApp app = Analyze(R"(
def installed() {
    subscribe(ghostInput, "switch", handler)
    subscribe(app, missingHandler)
}
def handler(evt) { }
)");
  EXPECT_GE(app.problems.size(), 2u);
}

TEST(EventPatternTest, OverlapRules) {
  EventPattern out;
  out.scope = EventScope::kDevice;
  out.attribute = "switch";
  out.value = "on";
  EventPattern in_any = out;
  in_any.value = "";
  EventPattern in_off = out;
  in_off.value = "off";
  EXPECT_TRUE(in_any.Overlaps(out));
  EXPECT_TRUE(out.Overlaps(out));
  EXPECT_FALSE(in_off.Overlaps(out));
  EventPattern other_attr = out;
  other_attr.attribute = "lock";
  EXPECT_FALSE(other_attr.Overlaps(out));
}

TEST(EventPatternTest, ConflictRules) {
  EventPattern on;
  on.scope = EventScope::kDevice;
  on.attribute = "switch";
  on.value = "on";
  EventPattern off = on;
  off.value = "off";
  EventPattern any = on;
  any.value = "";
  EXPECT_TRUE(on.ConflictsWith(off));
  EXPECT_FALSE(on.ConflictsWith(on));
  EXPECT_FALSE(on.ConflictsWith(any));  // wildcard is not a conflict
  EventPattern lock = off;
  lock.attribute = "lock";
  EXPECT_FALSE(on.ConflictsWith(lock));
}

}  // namespace
}  // namespace iotsan::ir
