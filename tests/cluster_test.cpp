// Cluster coordinator tests (src/cluster): a real 2-worker loopback
// cluster must produce reports byte-identical to a single-node run —
// including when a worker fails mid-check and its units are
// re-dispatched — plus unit tests for the wire format, the work
// planner, the shard merge, and the HTTP client's backoff/deadline
// machinery.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "config/deployment.hpp"
#include "core/service.hpp"
#include "server/server.hpp"
#include "telemetry/telemetry.hpp"
#include "util/http_client.hpp"
#include "util/json.hpp"

namespace iotsan::cluster {
namespace {

// ---- fixtures ----------------------------------------------------------------

/// The paper's §8 violating pair plus `cold_apps` independent
/// "It's Too Cold" instances on private sensor/heater pairs — one
/// related-set group each, so the planner yields 1 + cold_apps units.
json::Value DeploymentJson(int cold_apps) {
  json::Array devices;
  json::Array apps;
  {
    json::Object presence;
    presence["id"] = "presence0";
    presence["type"] = "presenceSensor";
    presence["roles"] = json::Array{json::Value("presence")};
    devices.push_back(json::Value(std::move(presence)));
    json::Object lock;
    lock["id"] = "lock0";
    lock["type"] = "smartLock";
    lock["roles"] = json::Array{json::Value("mainDoorLock")};
    devices.push_back(json::Value(std::move(lock)));
    json::Object mode_app;
    mode_app["app"] = "Auto Mode Change";
    json::Object mode_inputs;
    mode_inputs["people"] = json::Array{json::Value("presence0")};
    mode_inputs["homeMode"] = "Home";
    mode_inputs["awayMode"] = "Away";
    mode_app["inputs"] = std::move(mode_inputs);
    apps.push_back(json::Value(std::move(mode_app)));
    json::Object unlock_app;
    unlock_app["app"] = "Unlock Door";
    json::Object unlock_inputs;
    unlock_inputs["lock1"] = json::Array{json::Value("lock0")};
    unlock_app["inputs"] = std::move(unlock_inputs);
    apps.push_back(json::Value(std::move(unlock_app)));
  }
  for (int i = 0; i < cold_apps; ++i) {
    json::Object sensor;
    sensor["id"] = "temp" + std::to_string(i);
    sensor["type"] = "motionTempSensor";
    devices.push_back(json::Value(std::move(sensor)));
    json::Object heater;
    heater["id"] = "heater" + std::to_string(i);
    heater["type"] = "smartSwitch";
    devices.push_back(json::Value(std::move(heater)));
    json::Object app;
    app["app"] = "It's Too Cold";
    json::Object inputs;
    inputs["temperatureSensor1"] =
        json::Array{json::Value("temp" + std::to_string(i))};
    inputs["temperature1"] = 40;
    inputs["switch1"] =
        json::Array{json::Value("heater" + std::to_string(i))};
    app["inputs"] = std::move(inputs);
    apps.push_back(json::Value(std::move(app)));
  }
  json::Object doc;
  doc["name"] = "cluster test home";
  doc["devices"] = std::move(devices);
  doc["apps"] = std::move(apps);
  return json::Value(std::move(doc));
}

core::CheckRequest MakeRequest(int cold_apps, int jobs = 1) {
  core::CheckRequest request;
  request.deployment =
      config::ParseDeployment(DeploymentJson(cold_apps));
  request.options.jobs = jobs;
  return request;
}

/// Everything the determinism guarantee covers: verdict text (violation
/// blocks with their counter-example traces, in canonical order), the
/// result line, and the summed search counters.
struct Determinism {
  std::string violations;
  std::string result_line;
  int exit_code = 0;
  std::uint64_t states_explored = 0;
  std::uint64_t states_matched = 0;
  std::uint64_t transitions = 0;
  std::uint64_t store_entries = 0;
  std::vector<std::uint64_t> depth_histogram;

  bool operator==(const Determinism&) const = default;
};

Determinism Facts(const core::CheckResponse& response) {
  Determinism out;
  out.violations = core::RenderViolations(response.report);
  out.result_line = core::RenderResultLine(response.report);
  out.exit_code = response.exit_code;
  out.states_explored = response.report.states_explored;
  out.states_matched = response.report.states_matched;
  out.transitions = response.report.transitions;
  out.store_entries = response.report.store_entries;
  out.depth_histogram = response.report.depth_histogram;
  return out;
}

/// A worker that answers /v1/health but abandons every /v1/check
/// connection (closes without responding) — the shape of a process that
/// dies mid-dispatch.  Used to drive the re-dispatch path.
class BrokenCheckWorker {
 public:
  BrokenCheckWorker() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    ::listen(fd_, 8);
    thread_ = std::thread([this] { Loop(); });
  }

  ~BrokenCheckWorker() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }

  int port() const { return port_; }

 private:
  void Loop() {
    for (;;) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client < 0) return;
      std::string head;
      char chunk[4096];
      while (head.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(client, chunk, sizeof chunk, 0);
        if (n <= 0) break;
        head.append(chunk, static_cast<std::size_t>(n));
      }
      if (head.rfind("GET /v1/health", 0) == 0) {
        const char response[] =
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n"
            "Connection: close\r\n\r\n{}";
        ::send(client, response, sizeof response - 1, MSG_NOSIGNAL);
      }
      // Anything else — including every /v1/check — is abandoned.
      ::close(client);
    }
  }

  int fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

/// Starts `count` real worker servers on ephemeral loopback ports.
class WorkerFleet {
 public:
  explicit WorkerFleet(int count) {
    for (int i = 0; i < count; ++i) {
      server::ServerConfig config;
      config.port = 0;
      config.jobs = 1;
      config.http_workers = 2;
      auto server = std::make_unique<server::Server>(std::move(config));
      server->Start();
      servers_.push_back(std::move(server));
    }
  }

  std::vector<WorkerSpec> Specs() const {
    std::vector<WorkerSpec> out;
    for (const auto& server : servers_) {
      out.push_back({"127.0.0.1", server->port()});
    }
    return out;
  }

  void Stop(std::size_t index) { servers_[index]->Stop(); }

 private:
  std::vector<std::unique_ptr<server::Server>> servers_;
};

ClusterOptions FastRetryOptions(std::vector<WorkerSpec> workers) {
  ClusterOptions options;
  options.workers = std::move(workers);
  options.connect_timeout_ms = 1000;
  options.max_attempts = 2;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 5;
  return options;
}

// ---- worker list -------------------------------------------------------------

TEST(WorkerListTest, ParsesHostsAndPorts) {
  const std::vector<WorkerSpec> workers =
      ParseWorkerList("127.0.0.1:9001,localhost:9002, ,");
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0].host, "127.0.0.1");
  EXPECT_EQ(workers[0].port, 9001);
  EXPECT_EQ(workers[1].host, "localhost");
  EXPECT_EQ(workers[1].port, 9002);
  EXPECT_EQ(workers[0].endpoint(), "127.0.0.1:9001");
}

TEST(WorkerListTest, RejectsMalformedEntries) {
  EXPECT_THROW(ParseWorkerList(""), Error);
  EXPECT_THROW(ParseWorkerList("no-port"), Error);
  EXPECT_THROW(ParseWorkerList("host:"), Error);
  EXPECT_THROW(ParseWorkerList(":9001"), Error);
  EXPECT_THROW(ParseWorkerList("host:0"), Error);
  EXPECT_THROW(ParseWorkerList("host:70000"), Error);
  EXPECT_THROW(ParseWorkerList("host:abc"), Error);
}

// ---- backoff / deadline ------------------------------------------------------

TEST(BackoffTest, DelaysStayInsideExponentialWindowAndCap) {
  util::RetryPolicy policy;
  policy.base_delay_ms = 100;
  policy.max_delay_ms = 350;
  iotsan::Rng rng(7);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const int window = std::min(policy.max_delay_ms,
                                policy.base_delay_ms * (1 << (attempt - 1)));
    for (int i = 0; i < 50; ++i) {
      const int delay = util::BackoffDelayMs(policy, attempt, rng);
      EXPECT_GE(delay, 0);
      EXPECT_LE(delay, window);
    }
  }
}

TEST(BackoffTest, SameSeedSameSequence) {
  util::RetryPolicy policy;
  iotsan::Rng a(42);
  iotsan::Rng b(42);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_EQ(util::BackoffDelayMs(policy, attempt, a),
              util::BackoffDelayMs(policy, attempt, b));
  }
}

TEST(BackoffTest, RetryHelperRetriesTransientOnly) {
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 1;
  policy.max_delay_ms = 2;
  int calls = 0;
  int retries_seen = 0;
  const util::HttpResponse response = util::HttpCallWithRetry(
      policy,
      [&] {
        if (++calls < 3) throw util::HttpError("boom", /*transient=*/true);
        return util::HttpResponse{200, "ok"};
      },
      [&](int, int, const std::string&) { ++retries_seen; });
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries_seen, 2);

  calls = 0;
  EXPECT_THROW(util::HttpCallWithRetry(
                   policy,
                   [&]() -> util::HttpResponse {
                     ++calls;
                     throw util::HttpError("bad", /*transient=*/false);
                   }),
               util::HttpError);
  EXPECT_EQ(calls, 1);  // non-transient: no retry

  calls = 0;
  EXPECT_THROW(util::HttpCallWithRetry(
                   policy,
                   [&]() -> util::HttpResponse {
                     ++calls;
                     throw util::HttpError("down", /*transient=*/true);
                   }),
               util::HttpError);
  EXPECT_EQ(calls, 3);  // transient: bounded by max_attempts
}

TEST(DeadlineTest, ReadTimeoutBoundsAStalledServer) {
  // A listener that accepts and then never answers: the read deadline,
  // not the peer, must end the call.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  ::listen(fd, 1);

  util::HttpClientConfig config;
  config.connect_timeout_ms = 1000;
  config.read_timeout_ms = 150;
  const auto start = std::chrono::steady_clock::now();
  bool transient = false;
  EXPECT_THROW(
      {
        try {
          util::HttpCall("127.0.0.1", ntohs(addr.sin_port), "GET", "/x", "",
                         {}, config);
        } catch (const util::HttpError& e) {
          transient = e.transient();
          throw;
        }
      },
      util::HttpError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(transient);  // a timeout is worth retrying
  EXPECT_LT(elapsed, 5.0);
  ::close(fd);
}

// ---- wire format -------------------------------------------------------------

TEST(WireTest, CheckResultRoundTripsEveryMergedField) {
  checker::CheckResult result;
  checker::Violation violation;
  violation.property_id = "P06";
  violation.description = "door unlocks when nobody is home";
  violation.apps = {"Auto Mode Change", "Unlock Door"};
  violation.occurrences = 3;
  result.violations.push_back(violation);
  result.states_explored = 1234;
  result.states_matched = 56;
  result.transitions = 2000;
  result.cascade_drains = 77;
  result.completed = false;
  result.seconds = 1.25;
  result.store_fill_ratio = 0.5;
  result.est_omission_probability = 0.01;
  result.store_entries = 1200;
  result.store_memory_bytes = 65536;
  result.store_bytes_per_state = 54.6;
  result.compress_pool_entries = 10;
  result.compress_pool_bytes = 320;
  result.compress_lookups = 99;
  result.compress_hits = 80;
  result.depth_histogram = {1, 4, 9, 2};

  const checker::CheckResult back =
      CheckResultFromJson(CheckResultToJson(result));
  EXPECT_EQ(back.states_explored, result.states_explored);
  EXPECT_EQ(back.states_matched, result.states_matched);
  EXPECT_EQ(back.transitions, result.transitions);
  EXPECT_EQ(back.cascade_drains, result.cascade_drains);
  EXPECT_EQ(back.completed, result.completed);
  EXPECT_DOUBLE_EQ(back.seconds, result.seconds);
  EXPECT_DOUBLE_EQ(back.store_fill_ratio, result.store_fill_ratio);
  EXPECT_DOUBLE_EQ(back.est_omission_probability,
                   result.est_omission_probability);
  EXPECT_EQ(back.store_entries, result.store_entries);
  EXPECT_EQ(back.store_memory_bytes, result.store_memory_bytes);
  EXPECT_DOUBLE_EQ(back.store_bytes_per_state, result.store_bytes_per_state);
  EXPECT_EQ(back.compress_pool_entries, result.compress_pool_entries);
  EXPECT_EQ(back.compress_pool_bytes, result.compress_pool_bytes);
  EXPECT_EQ(back.compress_lookups, result.compress_lookups);
  EXPECT_EQ(back.compress_hits, result.compress_hits);
  EXPECT_EQ(back.depth_histogram, result.depth_histogram);
  ASSERT_EQ(back.violations.size(), 1u);
  EXPECT_EQ(back.violations[0].property_id, "P06");
  EXPECT_EQ(back.violations[0].apps, violation.apps);
  EXPECT_EQ(back.violations[0].occurrences, 3u);
}

TEST(WireTest, UnitRequestCarriesEnvelopeAndUnitOptions) {
  core::CheckRequest request = MakeRequest(/*cold_apps=*/0);
  request.options.events = 4;
  request.options.failures = true;
  request.options.deadline_seconds = 30;
  WorkUnit unit;
  unit.group_apps = {0, 1};
  unit.branch_modulus = 4;
  unit.branch_residue = 2;
  unit.bitstate_seed = 99;

  const json::Value doc = UnitRequestJson(request, unit);
  EXPECT_EQ(doc.At("schema").AsString(), "iotsan.request/1");
  EXPECT_TRUE(doc.Has("deployment"));
  const json::Value& options = doc.At("options");
  EXPECT_EQ(options.At("events").AsInt(), 4);
  EXPECT_TRUE(options.At("failures").AsBool());
  EXPECT_EQ(options.At("deadlineSeconds").AsInt(), 30);
  EXPECT_EQ(options.At("groupApps").AsArray().size(), 2u);
  EXPECT_EQ(options.At("branchModulus").AsInt(), 4);
  EXPECT_EQ(options.At("branchResidue").AsInt(), 2);
  EXPECT_EQ(options.At("bitstateSeed").AsInt(), 99);
  // The worker's own pool must size the search: jobs never forwarded.
  EXPECT_FALSE(options.Has("jobs"));
}

// ---- planner / shard merge ---------------------------------------------------

TEST(PlanTest, OneGroupUnitPerGroupByDefault) {
  const std::vector<std::vector<std::size_t>> groups = {{0, 1}, {2}};
  const std::vector<WorkUnit> units =
      PlanUnits(groups, ClusterOptions{}, core::RequestOptions{});
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].kind, UnitKind::kGroup);
  EXPECT_EQ(units[0].group_apps, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(units[1].group_index, 1u);
}

TEST(PlanTest, BranchSplitYieldsResidueShards) {
  ClusterOptions options;
  options.branch_split = 3;
  const std::vector<WorkUnit> units =
      PlanUnits({{0, 1}}, options, core::RequestOptions{});
  ASSERT_EQ(units.size(), 3u);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(units[i].kind, UnitKind::kBranchShard);
    EXPECT_EQ(units[i].branch_modulus, 3u);
    EXPECT_EQ(units[i].branch_residue, i);
  }
}

TEST(PlanTest, SwarmLanesNeedBitstateAndDiversifySeeds) {
  ClusterOptions options;
  options.swarm_lanes = 3;
  // Without bitstate, lanes are meaningless: plain group units.
  EXPECT_EQ(PlanUnits({{0}}, options, core::RequestOptions{}).size(), 1u);
  core::RequestOptions bitstate;
  bitstate.bitstate = true;
  const std::vector<WorkUnit> units = PlanUnits({{0}}, options, bitstate);
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].bitstate_seed, 0u);  // lane 0 = historical family
  EXPECT_NE(units[1].bitstate_seed, 0u);
  EXPECT_NE(units[1].bitstate_seed, units[2].bitstate_seed);
}

TEST(MergeTest, BranchShardsDropDuplicateInitialStateAccounting) {
  checker::CheckResult a;
  a.states_explored = 5;
  a.transitions = 4;
  a.depth_histogram = {1, 4};
  checker::CheckResult b;
  b.states_explored = 7;
  b.transitions = 6;
  b.depth_histogram = {1, 6};
  checker::Violation v;
  v.property_id = "P01";
  v.occurrences = 2;
  b.violations.push_back(v);

  const checker::CheckResult merged =
      MergeShardResults(UnitKind::kBranchShard, {a, b});
  // Both shards accounted the shared initial state; a single run counts
  // it once.
  EXPECT_EQ(merged.states_explored, 11u);
  EXPECT_EQ(merged.depth_histogram,
            (std::vector<std::uint64_t>{1, 10}));
  EXPECT_EQ(merged.transitions, 10u);
  ASSERT_EQ(merged.violations.size(), 1u);
  EXPECT_EQ(merged.violations[0].occurrences, 2u);
}

// ---- end-to-end cluster ------------------------------------------------------

TEST(ClusterTest, TwoWorkersMatchSingleNodeByteForByte) {
  WorkerFleet fleet(2);
  Coordinator coordinator(FastRetryOptions(fleet.Specs()));

  const core::CheckRequest request = MakeRequest(/*cold_apps=*/2);
  const ClusterOutcome outcome = coordinator.Check(request);
  const core::CheckResponse local = core::RunCheck(request);

  EXPECT_EQ(Facts(outcome.response), Facts(local));
  EXPECT_EQ(outcome.response.report.related_set_count,
            local.report.related_set_count);
  // One kGroup unit per related set, all of them dispatched remotely.
  EXPECT_EQ(outcome.units_total,
            static_cast<std::size_t>(local.report.related_set_count));
  EXPECT_EQ(outcome.units_remote, outcome.units_total);
  EXPECT_EQ(outcome.units_local, 0u);
  EXPECT_EQ(outcome.units_redispatched, 0u);
  EXPECT_FALSE(outcome.degraded_local);
}

TEST(ClusterTest, ParallelRequestStillMatchesSingleNode) {
  WorkerFleet fleet(2);
  Coordinator coordinator(FastRetryOptions(fleet.Specs()));

  const core::CheckRequest request = MakeRequest(/*cold_apps=*/2,
                                                 /*jobs=*/4);
  const ClusterOutcome outcome = coordinator.Check(request);
  const core::CheckResponse local = core::RunCheck(request);
  EXPECT_EQ(Facts(outcome.response), Facts(local));
}

TEST(ClusterTest, BranchShardsPreserveVerdicts) {
  WorkerFleet fleet(2);
  ClusterOptions options = FastRetryOptions(fleet.Specs());
  options.branch_split = 3;
  Coordinator coordinator(std::move(options));

  const core::CheckRequest request = MakeRequest(/*cold_apps=*/1);
  const ClusterOutcome outcome = coordinator.Check(request);
  const core::CheckResponse local = core::RunCheck(request);

  // Shards re-explore shared prefixes, so counters — including the
  // per-violation "seen Nx" occurrence tallies — exceed a single run's;
  // the verdicts, ordering, and counter-example traces must be
  // identical.  Scrub the occurrence counts before comparing.
  const auto scrub = [](std::string text) {
    for (std::size_t at = text.find("seen "); at != std::string::npos;
         at = text.find("seen ", at + 1)) {
      std::size_t digits = at + 5;
      while (digits < text.size() && std::isdigit(text[digits]) != 0) {
        text.erase(digits, 1);
      }
    }
    return text;
  };
  EXPECT_EQ(outcome.units_total,
            static_cast<std::size_t>(local.report.related_set_count) * 3);
  EXPECT_EQ(scrub(core::RenderViolations(outcome.response.report)),
            scrub(core::RenderViolations(local.report)));
  EXPECT_EQ(core::RenderResultLine(outcome.response.report),
            core::RenderResultLine(local.report));
  EXPECT_EQ(outcome.response.exit_code, local.exit_code);
  EXPECT_GE(outcome.response.report.states_explored,
            local.report.states_explored);
}

TEST(ClusterTest, DeadWorkerUnitsAreRedispatchedToSurvivors) {
  telemetry::Registry registry;
  telemetry::SetActive(&registry);
  WorkerFleet fleet(1);
  BrokenCheckWorker broken;  // health ok, every check abandoned

  std::vector<WorkerSpec> specs = fleet.Specs();
  specs.push_back({"127.0.0.1", broken.port()});
  Coordinator coordinator(FastRetryOptions(std::move(specs)));

  const core::CheckRequest request = MakeRequest(/*cold_apps=*/3);
  const ClusterOutcome outcome = coordinator.Check(request);
  const core::CheckResponse local = core::RunCheck(request);

  EXPECT_EQ(Facts(outcome.response), Facts(local));
  EXPECT_FALSE(outcome.degraded_local);
  // The broken worker took at least one unit down with it; the
  // survivor (or, if it died last, local fallback) finished the job
  // without losing work.
  EXPECT_GE(outcome.units_redispatched + outcome.units_local, 1u);

  bool broken_row_seen = false;
  for (const WorkerStatus& status : coordinator.WorkerRows()) {
    if (status.endpoint == "127.0.0.1:" + std::to_string(broken.port())) {
      broken_row_seen = true;
      EXPECT_FALSE(status.healthy);
      EXPECT_GE(status.units_failed, 1u);
    }
  }
  EXPECT_TRUE(broken_row_seen);
  const telemetry::Registry* t = telemetry::Active();
  EXPECT_GE(t->cluster.worker_failures.load(), 1u);
  telemetry::SetActive(nullptr);
}

TEST(ClusterTest, AllWorkersDownDegradesToLocalWithSameReport) {
  // Grab (and immediately release) two ephemeral ports: nothing listens.
  int dead_ports[2];
  for (int& port : dead_ports) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port = ntohs(addr.sin_port);
    ::close(fd);
  }
  Coordinator coordinator(FastRetryOptions(
      {{"127.0.0.1", dead_ports[0]}, {"127.0.0.1", dead_ports[1]}}));

  const core::CheckRequest request = MakeRequest(/*cold_apps=*/1);
  const ClusterOutcome outcome = coordinator.Check(request);
  const core::CheckResponse local = core::RunCheck(request);
  EXPECT_TRUE(outcome.degraded_local);
  EXPECT_EQ(Facts(outcome.response), Facts(local));
  for (const WorkerStatus& status : coordinator.WorkerRows()) {
    EXPECT_FALSE(status.healthy);
  }
}

TEST(ClusterTest, NoLocalFallbackFailsFastWhenFleetIsDown) {
  ClusterOptions options =
      FastRetryOptions({{"127.0.0.1", 1}});  // port 1: nothing listens
  options.allow_local_fallback = false;
  Coordinator coordinator(std::move(options));
  EXPECT_THROW(coordinator.Check(MakeRequest(/*cold_apps=*/0)), Error);
}

TEST(ClusterTest, WorkerUnitEndpointReturnsRawResult) {
  // The worker half of the protocol: POST /v1/check with groupApps
  // returns a "unit" CheckResult, not a rendered report.
  WorkerFleet fleet(1);
  const WorkerSpec spec = fleet.Specs()[0];
  core::CheckRequest request = MakeRequest(/*cold_apps=*/0);
  WorkUnit unit;
  unit.group_apps = {0, 1};
  const util::HttpResponse response =
      util::HttpCall(spec.host, spec.port, "POST", "/v1/check",
                     UnitRequestJson(request, unit).Dump(0));
  ASSERT_EQ(response.status, 200);
  const json::Value doc = json::Parse(response.body);
  ASSERT_TRUE(doc.Has("unit"));
  const checker::CheckResult result = CheckResultFromJson(doc.At("unit"));
  EXPECT_GT(result.states_explored, 0u);
  EXPECT_FALSE(result.violations.empty());

  // Out-of-range app indices are a client error, not a crash.
  WorkUnit bad;
  bad.group_apps = {99};
  const util::HttpResponse rejected =
      util::HttpCall(spec.host, spec.port, "POST", "/v1/check",
                     UnitRequestJson(request, bad).Dump(0));
  EXPECT_EQ(rejected.status, 400);
}

}  // namespace
}  // namespace iotsan::cluster
