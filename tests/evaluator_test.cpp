// SmartScript evaluator tests: Groovy runtime semantics over the system
// state (the C++ equivalent of executing the generated Promela model).
#include <gtest/gtest.h>

#include <deque>

#include "config/builder.hpp"
#include "ir/analyzer.hpp"
#include "model/evaluator.hpp"
#include "model/system_model.hpp"
#include "util/error.hpp"

namespace iotsan::model {
namespace {

/// Builds a one-app system around `methods` with a standard device set,
/// runs `handler` on an optional event, and exposes the results.
class Harness {
 public:
  explicit Harness(const std::string& methods,
                   const std::string& extra_inputs = "") {
    config::DeploymentBuilder b("harness");
    b.ContactPhone("555-0100");
    b.Device("sw1", "smartSwitch", {"light"});
    b.Device("sw2", "smartSwitch", {"light"});
    b.Device("lock1", "smartLock", {"mainDoorLock"});
    b.Device("temp1", "temperatureSensor", {"tempSensor"});
    b.Device("motion1", "motionSensor");
    b.Device("dimmer1", "dimmerSwitch");
    auto binder = b.App("Harness App");
    binder.Devices("switches", {"sw1", "sw2"})
        .Devices("lock1", {"lock1"})
        .Devices("sensor", {"temp1"})
        .Devices("motion1", {"motion1"})
        .Devices("dimmer1", {"dimmer1"})
        .Number("threshold", 65)
        .Text("greeting", "hello");

    std::string source = R"(
definition(name: "Harness App", namespace: "t")
preferences {
    section("S") {
        input "switches", "capability.switch", multiple: true
        input "lock1", "capability.lock"
        input "sensor", "capability.temperatureMeasurement"
        input "motion1", "capability.motionSensor"
        input "dimmer1", "capability.switchLevel"
        input "threshold", "number"
        input "greeting", "text"
)" + extra_inputs + R"(
    }
}
def installed() {
    subscribe(motion1, "motion", handler)
}
)" + methods;

    std::vector<ir::AnalyzedApp> apps;
    apps.push_back(ir::AnalyzeSource(source, "Harness App"));
    model_ = std::make_unique<SystemModel>(b.Build(), std::move(apps));
    state_ = model_->MakeInitialState();
  }

  /// Runs `handler(evt)` with a motion/active event.
  void Run(const std::string& handler = "handler") {
    devices::Event event;
    event.source = devices::EventSource::kDevice;
    event.device = model_->DeviceIndex("motion1");
    event.attribute = 0;
    event.value = 1;  // active
    Evaluator evaluator(*model_, state_, queue_, log_, failure_);
    evaluator.InvokeHandler(0, handler, &event);
  }

  std::string Attr(const std::string& device, const std::string& attr) {
    const int d = model_->DeviceIndex(device);
    const int a = model_->devices()[d].AttributeIndex(attr);
    return model_->devices()[d].attributes()[a]->ValueName(
        state_.devices[d].values[a]);
  }

  SystemModel& model() { return *model_; }
  SystemState& state() { return state_; }
  CascadeLog& log() { return log_; }
  std::deque<devices::Event>& queue() { return queue_; }
  FailureScenario& failure() { return failure_; }

 private:
  std::unique_ptr<SystemModel> model_;
  SystemState state_;
  std::deque<devices::Event> queue_;
  CascadeLog log_;
  FailureScenario failure_;
};

TEST(EvaluatorTest, DeviceCommandUpdatesStateAndQueues) {
  Harness h("def handler(evt) { lock1.unlock() }");
  h.Run();
  EXPECT_EQ(h.Attr("lock1", "lock"), "unlocked");
  ASSERT_EQ(h.log().commands.size(), 1u);
  EXPECT_TRUE(h.log().commands[0].delivered);
  EXPECT_TRUE(h.log().commands[0].state_changed);
  ASSERT_EQ(h.queue().size(), 1u);  // actuator state-change event
  EXPECT_EQ(h.queue()[0].source, devices::EventSource::kDevice);
}

TEST(EvaluatorTest, ListBroadcastCommandsEveryDevice) {
  Harness h("def handler(evt) { switches.on() }");
  h.Run();
  EXPECT_EQ(h.Attr("sw1", "switch"), "on");
  EXPECT_EQ(h.Attr("sw2", "switch"), "on");
  EXPECT_EQ(h.log().commands.size(), 2u);
}

TEST(EvaluatorTest, NoOpCommandDoesNotQueueEvents) {
  // Locks start locked; lock() is a no-op (Algorithm 1 line 17).
  Harness h("def handler(evt) { lock1.lock() }");
  h.Run();
  ASSERT_EQ(h.log().commands.size(), 1u);
  EXPECT_FALSE(h.log().commands[0].state_changed);
  EXPECT_TRUE(h.queue().empty());
}

TEST(EvaluatorTest, ArgumentCommands) {
  Harness h("def handler(evt) { dimmer1.setLevel(75) }");
  h.Run();
  EXPECT_EQ(h.Attr("dimmer1", "level"), "75");
}

TEST(EvaluatorTest, EventObjectFields) {
  Harness h(R"(
def handler(evt) {
    state.name = evt.name
    state.value = evt.value
    state.who = evt.displayName
}
)");
  h.Run();
  const auto& app_state = h.state().app_state[0];
  EXPECT_EQ(app_state.at("name").AsString(), "motion");
  EXPECT_EQ(app_state.at("value").AsString(), "active");
  EXPECT_EQ(app_state.at("who").AsString(), "motion1");
}

TEST(EvaluatorTest, AttributeReads) {
  Harness h(R"(
def handler(evt) {
    state.t = sensor.currentTemperature
    state.sw = switches.first.currentSwitch
    state.viaMethod = lock1.currentValue("lock")
}
)");
  h.Run();
  const auto& app_state = h.state().app_state[0];
  EXPECT_DOUBLE_EQ(app_state.at("t").AsNumber(), 70);  // initial reading
  EXPECT_EQ(app_state.at("sw").AsString(), "off");
  EXPECT_EQ(app_state.at("viaMethod").AsString(), "locked");
}

TEST(EvaluatorTest, GroovyTruthinessAndElvis) {
  Harness h(R"(
def handler(evt) {
    state.a = "" ? 1 : 2
    state.b = 0 ? 1 : 2
    state.c = [] ? 1 : 2
    state.d = "x" ? 1 : 2
    state.e = null ?: 9
    state.f = 5 ?: 9
}
)");
  h.Run();
  const auto& s = h.state().app_state[0];
  EXPECT_DOUBLE_EQ(s.at("a").AsNumber(), 2);
  EXPECT_DOUBLE_EQ(s.at("b").AsNumber(), 2);
  EXPECT_DOUBLE_EQ(s.at("c").AsNumber(), 2);
  EXPECT_DOUBLE_EQ(s.at("d").AsNumber(), 1);
  EXPECT_DOUBLE_EQ(s.at("e").AsNumber(), 9);
  EXPECT_DOUBLE_EQ(s.at("f").AsNumber(), 5);
}

TEST(EvaluatorTest, CollectionUtilities) {
  Harness h(R"(
def handler(evt) {
    def nums = [3, 1, 2]
    state.size = nums.size()
    state.sum = nums.sum()
    state.found = nums.find { it > 1 }
    state.count = nums.count { it > 1 }
    state.any = nums.any { it == 2 }
    state.every = nums.every { it > 0 }
    state.joined = nums.collect { it * 10 }.join(",")
    state.has = 2 in nums
}
)");
  h.Run();
  const auto& s = h.state().app_state[0];
  EXPECT_DOUBLE_EQ(s.at("size").AsNumber(), 3);
  EXPECT_DOUBLE_EQ(s.at("sum").AsNumber(), 6);
  EXPECT_DOUBLE_EQ(s.at("found").AsNumber(), 3);
  EXPECT_DOUBLE_EQ(s.at("count").AsNumber(), 2);
  EXPECT_TRUE(s.at("any").AsBool());
  EXPECT_TRUE(s.at("every").AsBool());
  EXPECT_EQ(s.at("joined").AsString(), "30,10,20");
  EXPECT_TRUE(s.at("has").AsBool());
}

TEST(EvaluatorTest, DeviceListFiltering) {
  Harness h(R"(
def handler(evt) {
    switches.first.on()
    def lit = switches.findAll { it.currentSwitch == "on" }
    state.litCount = lit.size()
    lit.each { it.off() }
}
)");
  h.Run();
  EXPECT_DOUBLE_EQ(h.state().app_state[0].at("litCount").AsNumber(), 1);
  EXPECT_EQ(h.Attr("sw1", "switch"), "off");
}

TEST(EvaluatorTest, StringMethodsAndInterpolation) {
  Harness h(R"(
def handler(evt) {
    state.upper = greeting.toUpperCase()
    state.msg = "value is ${evt.value} at ${greeting}"
    state.n = "42".toInteger() + 1
    state.starts = greeting.startsWith("he")
}
)");
  h.Run();
  const auto& s = h.state().app_state[0];
  EXPECT_EQ(s.at("upper").AsString(), "HELLO");
  EXPECT_EQ(s.at("msg").AsString(), "value is active at hello");
  EXPECT_DOUBLE_EQ(s.at("n").AsNumber(), 43);
  EXPECT_TRUE(s.at("starts").AsBool());
}

TEST(EvaluatorTest, UserMethodsAndRecursionControl) {
  Harness h(R"(
def handler(evt) {
    state.result = fib(10)
}
def fib(n) {
    if (n < 2) {
        return n
    }
    return fib(n - 1) + fib(n - 2)
}
)");
  h.Run();
  EXPECT_DOUBLE_EQ(h.state().app_state[0].at("result").AsNumber(), 55);
}

TEST(EvaluatorTest, ControlFlow) {
  Harness h(R"(
def handler(evt) {
    def total = 0
    for (x in [1, 2, 3, 4]) {
        if (x % 2 == 0) {
            total += x
        }
    }
    def i = 0
    while (i < 3) {
        i = i + 1
    }
    state.total = total
    state.i = i
}
)");
  h.Run();
  EXPECT_DOUBLE_EQ(h.state().app_state[0].at("total").AsNumber(), 6);
  EXPECT_DOUBLE_EQ(h.state().app_state[0].at("i").AsNumber(), 3);
}

TEST(EvaluatorTest, UnboundedLoopIsCutOff) {
  Harness h("def handler(evt) { while (true) { } }");
  EXPECT_THROW(h.Run(), Error);
}

TEST(EvaluatorTest, ModeChangeQueuesLocationEvent) {
  Harness h("def handler(evt) { setLocationMode(\"Away\") }");
  h.Run();
  EXPECT_EQ(h.state().mode, 1);
  ASSERT_EQ(h.queue().size(), 1u);
  EXPECT_EQ(h.queue()[0].source, devices::EventSource::kLocationMode);
  EXPECT_EQ(h.log().mode_setters, (std::vector<int>{0}));
  EXPECT_THROW(
      [] {
        Harness bad("def handler(evt) { setLocationMode(\"Mars\") }");
        bad.Run();
      }(),
      SemanticError);
}

TEST(EvaluatorTest, SmsRecipientChecking) {
  Harness good("def handler(evt) { sendSms(\"555-0100\", \"hi\") }");
  good.Run();
  ASSERT_EQ(good.log().api_calls.size(), 1u);
  EXPECT_FALSE(good.log().api_calls[0].recipient_mismatch);
  EXPECT_TRUE(good.log().user_notified);

  Harness bad("def handler(evt) { sendSms(\"555-ATTACKER\", \"hi\") }");
  bad.Run();
  EXPECT_TRUE(bad.log().api_calls[0].recipient_mismatch);
  EXPECT_FALSE(bad.log().user_notified);
}

TEST(EvaluatorTest, FailureScenarioDropsCommands) {
  Harness h("def handler(evt) { lock1.unlock() }");
  h.failure().actuator_offline = true;
  h.Run();
  EXPECT_EQ(h.Attr("lock1", "lock"), "locked");  // command lost
  ASSERT_EQ(h.log().commands.size(), 1u);
  EXPECT_FALSE(h.log().commands[0].delivered);
  EXPECT_EQ(h.log().failed_deliveries, 1);
  EXPECT_TRUE(h.queue().empty());
}

TEST(EvaluatorTest, RunInRegistersTimerOnce) {
  Harness h(R"(
def handler(evt) {
    runIn(60, later)
    runIn(60, later)
}
def later() { switches.off() }
)");
  h.Run();
  // SmartThings replaces pending timers: only one entry.
  EXPECT_EQ(h.state().timers.size(), 1u);
}

TEST(EvaluatorTest, MathAndNumberMethods) {
  Harness h(R"(
def handler(evt) {
    state.a = Math.abs(-3)
    state.b = Math.max(2, 5)
    state.c = Math.round(2.6)
    state.d = 7.9.toInteger()
}
)");
  h.Run();
  const auto& s = h.state().app_state[0];
  EXPECT_DOUBLE_EQ(s.at("a").AsNumber(), 3);
  EXPECT_DOUBLE_EQ(s.at("b").AsNumber(), 5);
  EXPECT_DOUBLE_EQ(s.at("c").AsNumber(), 3);
  EXPECT_DOUBLE_EQ(s.at("d").AsNumber(), 7);
}

TEST(EvaluatorTest, RuntimeErrorsAreDiagnosed) {
  EXPECT_THROW(
      [] {
        Harness h("def handler(evt) { sensor.explode() }");
        h.Run();
      }(),
      SemanticError);
  EXPECT_THROW(
      [] {
        Harness h("def handler(evt) { state.x = 1 / 0 }");
        h.Run();
      }(),
      SemanticError);
  EXPECT_THROW(
      [] {
        Harness h("def handler(evt) { state.bad = [1, 2] }");
        h.Run();
      }(),
      SemanticError);  // state must hold scalars
  EXPECT_THROW(
      [] {
        Harness h("def handler(evt) { nope.on() }");
        h.Run();
      }(),
      SemanticError);
}

TEST(EvaluatorTest, SafeNavigationOnNull) {
  Harness h(R"(
def handler(evt) {
    def x = null
    state.v = x?.size()
    state.ok = 1
}
)");
  h.Run();
  EXPECT_TRUE(h.state().app_state[0].at("v").is_null());
  EXPECT_DOUBLE_EQ(h.state().app_state[0].at("ok").AsNumber(), 1);
}

TEST(EvaluatorTest, PersistentStateSurvivesAcrossInvocations) {
  Harness h(R"(
def handler(evt) {
    def current = state.count
    state.count = (current ?: 0) + 1
}
)");
  h.Run();
  h.Run();
  h.Run();
  EXPECT_DOUBLE_EQ(h.state().app_state[0].at("count").AsNumber(), 3);
}

}  // namespace
}  // namespace iotsan::model
