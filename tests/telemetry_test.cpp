// Telemetry tests: counter/gauge snapshots, latency histograms and
// their Prometheus exposition, span nesting and JSONL shape,
// search-progress cadence, and store-diagnostic math.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/checker.hpp"
#include "checker/state_store.hpp"
#include "config/builder.hpp"
#include "ir/analyzer.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace iotsan::telemetry {
namespace {

// ---- Registry ----------------------------------------------------------------

std::uint64_t SampleValue(const std::vector<Sample>& samples,
                          const std::string& name) {
  for (const Sample& sample : samples) {
    if (sample.name == name) return sample.value;
  }
  ADD_FAILURE() << "no sample named " << name;
  return 0;
}

TEST(RegistryTest, SnapshotUsesDottedNamesAndLiveValues) {
  Registry registry;
  registry.search.states_explored = 42;
  registry.pipeline.apps_parsed = 7;
  registry.store.fill_permille = 123;

  std::vector<Sample> samples = registry.Snapshot();
  EXPECT_EQ(SampleValue(samples, "search.states_explored"), 42u);
  EXPECT_EQ(SampleValue(samples, "pipeline.apps_parsed"), 7u);
  EXPECT_EQ(SampleValue(samples, "store.fill_permille"), 123u);
  EXPECT_EQ(SampleValue(samples, "search.transitions"), 0u);
}

TEST(RegistryTest, ToJsonGroupsByLayer) {
  Registry registry;
  registry.search.transitions = 9;
  registry.store.entries = 5;

  const json::Value doc = registry.ToJson();
  EXPECT_EQ(doc.At("search").At("transitions").AsNumber(), 9);
  EXPECT_EQ(doc.At("store").At("entries").AsNumber(), 5);
  EXPECT_TRUE(doc.Has("pipeline"));
}

TEST(RegistryTest, ResetZeroesEverything) {
  Registry registry;
  registry.search.states_explored = 10;
  registry.store.memory_bytes = 99;
  registry.Reset();
  for (const Sample& sample : registry.Snapshot()) {
    EXPECT_EQ(sample.value, 0u) << sample.name;
  }
}

TEST(RegistryTest, SnapshotTagsGaugesAndCounters) {
  Registry registry;
  std::vector<Sample> samples = registry.Snapshot();
  auto kind_of = [&](const std::string& name) {
    for (const Sample& sample : samples) {
      if (sample.name == name) return sample.kind;
    }
    ADD_FAILURE() << "no sample named " << name;
    return SampleKind::kCounter;
  };
  // Point-in-time values are gauges; everything else accumulates.
  EXPECT_EQ(kind_of("store.entries"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("store.memory_bytes"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("store.fill_permille"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("store.omission_ppm"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("server.active_connections"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("server.queue_depth"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("store.saturation_warnings"), SampleKind::kCounter);
  EXPECT_EQ(kind_of("search.states_explored"), SampleKind::kCounter);
  EXPECT_EQ(kind_of("cache.hits"), SampleKind::kCounter);
}

// ---- Memory gauges -----------------------------------------------------------

TEST(MemoryGaugesTest, SnapshotCarriesMemorySamplesWithKinds) {
  Registry registry;
  registry.memory.store_exhaustive_bytes = 4096;
  registry.memory.trace_buffer_bytes = 128;

  std::vector<Sample> samples = registry.Snapshot();
  EXPECT_EQ(SampleValue(samples, "memory.store_exhaustive_bytes"), 4096u);
  EXPECT_EQ(SampleValue(samples, "memory.trace_buffer_bytes"), 128u);

  auto kind_of = [&](const std::string& name) {
    for (const Sample& sample : samples) {
      if (sample.name == name) return sample.kind;
    }
    ADD_FAILURE() << "no sample named " << name;
    return SampleKind::kCounter;
  };
  // Footprints are point-in-time; emitted trace bytes only accumulate.
  EXPECT_EQ(kind_of("memory.store_exhaustive_bytes"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("memory.store_bitstate_bytes"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("memory.cache_resident_bytes"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("memory.peak_rss_bytes"), SampleKind::kGauge);
  EXPECT_EQ(kind_of("memory.trace_buffer_bytes"), SampleKind::kCounter);
}

TEST(MemoryGaugesTest, ToJsonHasMemoryGroup) {
  Registry registry;
  registry.memory.cache_resident_bytes = 77;
  const json::Value doc = registry.ToJson();
  EXPECT_EQ(doc.At("memory").At("cache_resident_bytes").AsNumber(), 77);
  EXPECT_TRUE(doc.At("memory").Has("peak_rss_bytes"));
}

TEST(MemoryGaugesTest, SamplePeakRssIsPositiveAndMonotonic) {
  Registry registry;
  const std::uint64_t first = SamplePeakRss(registry);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(SampleValue(registry.Snapshot(), "memory.peak_rss_bytes"), first);

  // A stale higher watermark must never be regressed by a lower OS
  // sample — the gauge is monotonic by construction.
  const std::uint64_t inflated = first + (1ull << 40);
  registry.memory.peak_rss_bytes = inflated;
  SamplePeakRss(registry);
  EXPECT_EQ(SampleValue(registry.Snapshot(), "memory.peak_rss_bytes"), inflated);
}

TEST(MemoryGaugesTest, PrometheusRendersIotsanMemoryFamilies) {
  Registry registry;
  registry.memory.store_exhaustive_bytes = 1024;
  SamplePeakRss(registry);
  const std::string text = RenderPrometheus(registry);
  EXPECT_NE(text.find("iotsan_memory_store_exhaustive_bytes 1024"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE iotsan_memory_store_exhaustive_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE iotsan_memory_trace_buffer_bytes counter"),
            std::string::npos);
  EXPECT_NE(text.find("iotsan_memory_peak_rss_bytes"), std::string::npos);
}

// ---- Histogram ---------------------------------------------------------------

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below the sub-bucket count (8) get one bucket each.
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v) << v;
    EXPECT_EQ(Histogram::BucketUpperBound(v), v) << v;
  }
}

TEST(HistogramTest, LogLinearBucketsBoundRelativeError) {
  EXPECT_EQ(Histogram::BucketIndex(8), 8u);
  EXPECT_EQ(Histogram::BucketUpperBound(8), 8u);
  EXPECT_EQ(Histogram::BucketIndex(15), 15u);
  EXPECT_EQ(Histogram::BucketUpperBound(15), 15u);
  // 16 opens the next group: two values per bucket.
  EXPECT_EQ(Histogram::BucketIndex(16), 16u);
  EXPECT_EQ(Histogram::BucketIndex(17), 16u);
  EXPECT_EQ(Histogram::BucketUpperBound(16), 17u);
  // Every value maps to a bucket whose upper bound is within 12.5%.
  for (std::uint64_t v = 1; v < (1ull << 40); v = v * 3 + 1) {
    const std::size_t index = Histogram::BucketIndex(v);
    const std::uint64_t upper = Histogram::BucketUpperBound(index);
    EXPECT_GE(upper, v) << v;
    EXPECT_LE(static_cast<double>(upper - v), 0.125 * v + 1) << v;
    if (index > 0) {
      EXPECT_LT(Histogram::BucketUpperBound(index - 1), v) << v;
    }
  }
}

TEST(HistogramTest, HugeValuesClampToTheLastBucket) {
  const std::uint64_t huge = ~std::uint64_t{0};
  EXPECT_EQ(Histogram::BucketIndex(huge), Histogram::kBuckets - 1);
  Histogram histogram;
  histogram.Record(huge);
  const HistogramSnapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, huge);
}

TEST(HistogramTest, SnapshotQuantilesTrackTheDistribution) {
  Histogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const HistogramSnapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500500u);
  EXPECT_EQ(snap.max, 1000u);
  // Log-linear buckets: quantiles land within one bucket (≤12.5%).
  EXPECT_NEAR(snap.P50(), 500.0, 500.0 * 0.13);
  EXPECT_NEAR(snap.P90(), 900.0, 900.0 * 0.13);
  EXPECT_NEAR(snap.P99(), 990.0, 990.0 * 0.13);
  // The quantile never exceeds the observed maximum.
  EXPECT_LE(snap.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram histogram;
  const HistogramSnapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_TRUE(snap.buckets.empty());
  EXPECT_EQ(snap.P50(), 0.0);
}

TEST(HistogramTest, ResetClearsAllState) {
  Histogram histogram;
  histogram.Record(7);
  histogram.Record(12345);
  histogram.Reset();
  const HistogramSnapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(HistogramTest, MergeCombinesSnapshots) {
  Histogram a;
  Histogram b;
  for (std::uint64_t v = 1; v <= 100; ++v) a.Record(v);
  for (std::uint64_t v = 900; v <= 1000; ++v) b.Record(v);
  HistogramSnapshot merged = a.TakeSnapshot();
  merged.Merge(b.TakeSnapshot());
  EXPECT_EQ(merged.count, 201u);
  EXPECT_EQ(merged.max, 1000u);
  EXPECT_NEAR(merged.P99(), 1000.0, 1000.0 * 0.13);
  // Bucket bounds stay strictly increasing after the merge.
  for (std::size_t i = 1; i < merged.buckets.size(); ++i) {
    EXPECT_LT(merged.buckets[i - 1].le, merged.buckets[i].le);
  }
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<std::uint64_t>(t) * 1000 + (i % 997));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const HistogramSnapshot::Bucket& bucket : snap.buckets) {
    bucket_total += bucket.count;
  }
  EXPECT_EQ(bucket_total, snap.count);
}

// ---- Prometheus exposition ---------------------------------------------------

TEST(PrometheusTest, NameMappingPrefixesAndSanitizes) {
  EXPECT_EQ(PrometheusName("search.states_explored"),
            "iotsan_search_states_explored");
  EXPECT_EQ(PrometheusName("cache.lookup_hit_duration_us"),
            "iotsan_cache_lookup_hit_duration_us");
}

TEST(PrometheusTest, RenderIsValidAndCarriesHistogramFamilies) {
  Registry registry;
  registry.search.states_explored = 5;
  registry.server_hist.request_duration_us.Record(120);
  registry.server_hist.request_duration_us.Record(4500);
  registry.cache_hist.lookup_hit_duration_us.Record(3);

  const std::string text = RenderPrometheus(registry);
  const std::vector<std::string> problems = ValidateExposition(text);
  for (const std::string& problem : problems) ADD_FAILURE() << problem;

  // Counters and gauges render with a TYPE line and a value.
  EXPECT_NE(text.find("# TYPE iotsan_search_states_explored counter"),
            std::string::npos);
  EXPECT_NE(text.find("iotsan_search_states_explored 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iotsan_store_entries gauge"),
            std::string::npos);

  // All histogram families render even when empty — the exposition
  // promises at least these families to scrapers.
  for (const char* family :
       {"iotsan_search_group_check_duration_us",
        "iotsan_cache_lookup_hit_duration_us",
        "iotsan_cache_lookup_miss_duration_us",
        "iotsan_parallel_task_run_duration_us",
        "iotsan_server_request_duration_us"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " histogram"),
              std::string::npos)
        << family;
    EXPECT_NE(text.find(std::string(family) + "_bucket{le=\"+Inf\"}"),
              std::string::npos)
        << family;
    EXPECT_NE(text.find(std::string(family) + "_sum"), std::string::npos);
    EXPECT_NE(text.find(std::string(family) + "_count"), std::string::npos);
  }

  // The recorded samples show up in _count.
  EXPECT_NE(text.find("iotsan_server_request_duration_us_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("iotsan_cache_lookup_hit_duration_us_count 1"),
            std::string::npos);
}

TEST(PrometheusTest, ValidatorRejectsMalformedExposition) {
  // Garbage line.
  EXPECT_FALSE(ValidateExposition("this is not prometheus\n").empty());
  // Histogram without +Inf bucket.
  EXPECT_FALSE(ValidateExposition("# TYPE x histogram\n"
                                  "x_bucket{le=\"10\"} 1\n"
                                  "x_sum 5\n"
                                  "x_count 1\n")
                   .empty());
  // Non-monotone cumulative buckets.
  EXPECT_FALSE(ValidateExposition("# TYPE x histogram\n"
                                  "x_bucket{le=\"10\"} 5\n"
                                  "x_bucket{le=\"20\"} 3\n"
                                  "x_bucket{le=\"+Inf\"} 5\n"
                                  "x_sum 40\n"
                                  "x_count 5\n")
                   .empty());
  // +Inf disagreeing with _count.
  EXPECT_FALSE(ValidateExposition("# TYPE x histogram\n"
                                  "x_bucket{le=\"+Inf\"} 4\n"
                                  "x_sum 40\n"
                                  "x_count 5\n")
                   .empty());
  // A well-formed single-family document passes.
  EXPECT_TRUE(ValidateExposition("# TYPE x histogram\n"
                                 "x_bucket{le=\"10\"} 2\n"
                                 "x_bucket{le=\"+Inf\"} 2\n"
                                 "x_sum 11\n"
                                 "x_count 2\n")
                  .empty());
}

// ---- Spans and the trace sink ------------------------------------------------

TEST(TraceSinkTest, TotalsAggregateByName) {
  TraceSink sink;  // totals-only
  {
    ScopedSpan outer(&sink, "outer");
    ScopedSpan inner1(&sink, "inner");
  }
  {
    ScopedSpan inner2(&sink, "inner");
  }
  ASSERT_EQ(sink.totals().size(), 2u);
  EXPECT_EQ(sink.totals().at("outer").count, 1u);
  EXPECT_EQ(sink.totals().at("inner").count, 2u);
}

TEST(TraceSinkTest, NestedSpansEmitWellFormedJsonl) {
  const std::string path = testing::TempDir() + "/telemetry_spans.jsonl";
  {
    TraceSink sink(path);
    ScopedSpan outer(&sink, "outer");
    outer.Attr("system", "test");
    {
      ScopedSpan inner(&sink, "inner");
      inner.Attr("states", std::int64_t{17});
    }
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<json::Value> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    lines.push_back(json::Parse(line));  // throws on malformed JSON
  }
  ASSERT_EQ(lines.size(), 2u);

  // Spans are emitted on destruction: children before parents.
  EXPECT_EQ(lines[0].At("name").AsString(), "inner");
  EXPECT_EQ(lines[0].At("depth").AsNumber(), 1);
  EXPECT_EQ(lines[0].At("attrs").At("states").AsNumber(), 17);
  EXPECT_EQ(lines[1].At("name").AsString(), "outer");
  EXPECT_EQ(lines[1].At("depth").AsNumber(), 0);
  EXPECT_EQ(lines[1].At("attrs").At("system").AsString(), "test");

  // The parent's interval covers the child's.
  const double outer_start = lines[1].At("start_us").AsNumber();
  const double outer_end = outer_start + lines[1].At("dur_us").AsNumber();
  const double inner_start = lines[0].At("start_us").AsNumber();
  const double inner_end = inner_start + lines[0].At("dur_us").AsNumber();
  EXPECT_LE(outer_start, inner_start);
  EXPECT_LE(inner_end, outer_end);
}

TEST(ScopedSpanTest, NullSinkIsANoop) {
  ScopedSpan span(nullptr, "ignored");
  span.Attr("key", "value");
  span.Attr("n", std::int64_t{1});
  // Also via the (unset) process-global sink.
  SetActiveTrace(nullptr);
  ScopedSpan global("also_ignored");
  global.Attr("x", 2.0);
}

// ---- Search progress ---------------------------------------------------------

constexpr const char* kUnlockApp = R"(
definition(name: "UnlockOnAway", namespace: "t")
preferences {
    section("S") {
        input "p1", "capability.presenceSensor"
        input "lock1", "capability.lock"
    }
}
def installed() {
    subscribe(p1, "presence.notpresent", handler)
}
def handler(evt) {
    lock1.unlock()
}
)";

model::SystemModel UnlockModel() {
  config::DeploymentBuilder b("home");
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("UnlockOnAway").Devices("p1", {"p1"}).Devices("lock1", {"lock1"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kUnlockApp, "UnlockOnAway"));
  return model::SystemModel(b.Build(), std::move(apps));
}

TEST(ProgressTest, CallbackFiresAtTheRequestedCadence) {
  model::SystemModel model = UnlockModel();
  checker::Checker checker(model);
  checker::CheckOptions options;
  options.max_events = 2;
  options.progress_every = 1;
  std::vector<ProgressSnapshot> seen;
  options.on_progress = [&seen](const ProgressSnapshot& snapshot) {
    seen.push_back(snapshot);
  };
  checker::CheckResult result = checker.Run(options);

  // Cadence 1 → one report per expanded state.
  EXPECT_EQ(seen.size(), result.states_explored);
  ASSERT_FALSE(seen.empty());
  const ProgressSnapshot& last = seen.back();
  EXPECT_LE(last.states_explored, result.states_explored);
  EXPECT_GE(last.elapsed_seconds, 0.0);
  EXPECT_GE(last.pruning_ratio, 0.0);
  EXPECT_LE(last.pruning_ratio, 1.0);
  EXPECT_EQ(last.depth_histogram.size(), result.depth_histogram.size());
}

TEST(ProgressTest, BudgetStopDeliversFinalSnapshot) {
  model::SystemModel model = UnlockModel();
  checker::Checker checker(model);
  checker::CheckOptions options;
  options.max_events = 3;
  options.max_states = 2;  // force an early stop
  std::vector<ProgressSnapshot> seen;
  options.on_progress = [&seen](const ProgressSnapshot& snapshot) {
    seen.push_back(snapshot);
  };
  checker::CheckResult result = checker.Run(options);

  EXPECT_FALSE(result.completed);
  // progress_every stayed 0, so the only report is the stop-time one.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen.back().states_explored, result.states_explored);
}

// Golden renderings: the progress line is part of the operator-facing
// surface (docs/observability.md quotes it), so its exact shape is
// pinned for the serial, parallel, and cache-active cases.
TEST(ProgressTest, FormatProgressGoldenSerial) {
  ProgressSnapshot snapshot;
  snapshot.states_explored = 1200;
  snapshot.states_per_second = 600;
  snapshot.states_matched = 300;
  snapshot.pruning_ratio = 0.2;
  snapshot.transitions = 4000;
  snapshot.cascade_drains = 5;
  snapshot.depth_histogram = {1, 3, 8};
  EXPECT_EQ(FormatProgress(snapshot),
            "progress: 1200 states (600/s), 300 matched (20.0% pruned), "
            "4000 transitions, 5 drains, depth 1|3|8");
}

TEST(ProgressTest, FormatProgressGoldenParallel) {
  ProgressSnapshot snapshot;
  snapshot.states_explored = 50000;
  snapshot.states_per_second = 12500;
  snapshot.states_matched = 10000;
  snapshot.pruning_ratio = 0.5;
  snapshot.transitions = 90000;
  snapshot.cascade_drains = 7;
  snapshot.store_fill_ratio = 0.1234;
  snapshot.jobs = 4;
  snapshot.branches_total = 9;
  snapshot.branches_done = 6;
  EXPECT_EQ(FormatProgress(snapshot),
            "progress: 50000 states (12500/s), 10000 matched (50.0% "
            "pruned), 90000 transitions, 7 drains, store fill 12.34%, "
            "jobs 4, branches 6/9");
}

TEST(ProgressTest, FormatProgressGoldenCacheActive) {
  ProgressSnapshot snapshot;
  snapshot.states_explored = 10;
  snapshot.states_per_second = 5;
  snapshot.states_matched = 0;
  snapshot.pruning_ratio = 0.0;
  snapshot.transitions = 12;
  snapshot.cascade_drains = 0;
  snapshot.cache_hits = 3;
  snapshot.cache_misses = 1;
  EXPECT_EQ(FormatProgress(snapshot),
            "progress: 10 states (5/s), 0 matched (0.0% pruned), "
            "12 transitions, 0 drains, cache 3 hit/1 miss");
}

TEST(ProgressTest, FormatProgressMentionsTheHeadlineNumbers) {
  ProgressSnapshot snapshot;
  snapshot.states_explored = 1200;
  snapshot.states_matched = 300;
  snapshot.transitions = 4000;
  snapshot.states_per_second = 600;
  snapshot.pruning_ratio = 0.2;
  snapshot.depth_histogram = {1, 3, 8};
  const std::string line = FormatProgress(snapshot);
  EXPECT_NE(line.find("progress:"), std::string::npos);
  EXPECT_NE(line.find("1200"), std::string::npos);
  EXPECT_NE(line.find("4000"), std::string::npos);
}

// ---- Store diagnostics -------------------------------------------------------

TEST(StoreDiagnosticsTest, OmissionProbabilityIsFillToThePowerK) {
  checker::BitstateStore store(64, 2);
  for (int i = 0; i < 40; ++i) {
    std::uint8_t bytes[2] = {static_cast<std::uint8_t>(i),
                             static_cast<std::uint8_t>(i * 7)};
    store.TestAndInsert(bytes);
  }
  const double fill = store.FillRatio();
  ASSERT_GT(fill, 0.0);
  EXPECT_NEAR(store.EstOmissionProbability(), fill * fill, 1e-12);
}

TEST(StoreDiagnosticsTest, ExhaustiveStoreNeverOmits) {
  checker::ExhaustiveStore store;
  std::uint8_t bytes[1] = {1};
  store.TestAndInsert(bytes);
  EXPECT_EQ(store.FillRatio(), 0.0);
  EXPECT_EQ(store.EstOmissionProbability(), 0.0);
}

TEST(StoreDiagnosticsTest, CheckResultCarriesStoreDiagnostics) {
  model::SystemModel model = UnlockModel();
  checker::Checker checker(model);
  checker::CheckOptions options;
  options.max_events = 2;
  options.store = checker::StoreKind::kBitstate;
  options.bitstate_bits = 1 << 10;
  checker::CheckResult result = checker.Run(options);

  EXPECT_GT(result.store_entries, 0u);
  EXPECT_GT(result.store_memory_bytes, 0u);
  EXPECT_GT(result.store_fill_ratio, 0.0);
  EXPECT_GE(result.est_omission_probability, 0.0);
  std::uint64_t histogram_sum = 0;
  for (std::uint64_t count : result.depth_histogram) histogram_sum += count;
  EXPECT_EQ(histogram_sum, result.states_explored);
}

TEST(StoreDiagnosticsTest, RunPublishesGaugesToActiveRegistry) {
  Registry registry;
  SetActive(&registry);
  model::SystemModel model = UnlockModel();
  checker::Checker checker(model);
  checker::CheckOptions options;
  options.max_events = 1;
  options.store = checker::StoreKind::kBitstate;
  options.bitstate_bits = 1 << 10;
  checker::CheckResult result = checker.Run(options);
  SetActive(nullptr);

  EXPECT_EQ(registry.search.states_explored, result.states_explored);
  EXPECT_EQ(registry.pipeline.checks_run, 1u);
  EXPECT_EQ(registry.store.entries, result.store_entries);
  EXPECT_GT(registry.store.fill_permille, 0u);
  EXPECT_GT(registry.search.handler_dispatches, 0u);
}

}  // namespace
}  // namespace iotsan::telemetry
