// Telemetry tests: counter/gauge snapshots, span nesting and JSONL
// shape, search-progress cadence, and store-diagnostic math.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checker/checker.hpp"
#include "checker/state_store.hpp"
#include "config/builder.hpp"
#include "ir/analyzer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace iotsan::telemetry {
namespace {

// ---- Registry ----------------------------------------------------------------

std::uint64_t SampleValue(const std::vector<Sample>& samples,
                          const std::string& name) {
  for (const Sample& sample : samples) {
    if (sample.name == name) return sample.value;
  }
  ADD_FAILURE() << "no sample named " << name;
  return 0;
}

TEST(RegistryTest, SnapshotUsesDottedNamesAndLiveValues) {
  Registry registry;
  registry.search.states_explored = 42;
  registry.pipeline.apps_parsed = 7;
  registry.store.fill_permille = 123;

  std::vector<Sample> samples = registry.Snapshot();
  EXPECT_EQ(SampleValue(samples, "search.states_explored"), 42u);
  EXPECT_EQ(SampleValue(samples, "pipeline.apps_parsed"), 7u);
  EXPECT_EQ(SampleValue(samples, "store.fill_permille"), 123u);
  EXPECT_EQ(SampleValue(samples, "search.transitions"), 0u);
}

TEST(RegistryTest, ToJsonGroupsByLayer) {
  Registry registry;
  registry.search.transitions = 9;
  registry.store.entries = 5;

  const json::Value doc = registry.ToJson();
  EXPECT_EQ(doc.At("search").At("transitions").AsNumber(), 9);
  EXPECT_EQ(doc.At("store").At("entries").AsNumber(), 5);
  EXPECT_TRUE(doc.Has("pipeline"));
}

TEST(RegistryTest, ResetZeroesEverything) {
  Registry registry;
  registry.search.states_explored = 10;
  registry.store.memory_bytes = 99;
  registry.Reset();
  for (const Sample& sample : registry.Snapshot()) {
    EXPECT_EQ(sample.value, 0u) << sample.name;
  }
}

// ---- Spans and the trace sink ------------------------------------------------

TEST(TraceSinkTest, TotalsAggregateByName) {
  TraceSink sink;  // totals-only
  {
    ScopedSpan outer(&sink, "outer");
    ScopedSpan inner1(&sink, "inner");
  }
  {
    ScopedSpan inner2(&sink, "inner");
  }
  ASSERT_EQ(sink.totals().size(), 2u);
  EXPECT_EQ(sink.totals().at("outer").count, 1u);
  EXPECT_EQ(sink.totals().at("inner").count, 2u);
}

TEST(TraceSinkTest, NestedSpansEmitWellFormedJsonl) {
  const std::string path = testing::TempDir() + "/telemetry_spans.jsonl";
  {
    TraceSink sink(path);
    ScopedSpan outer(&sink, "outer");
    outer.Attr("system", "test");
    {
      ScopedSpan inner(&sink, "inner");
      inner.Attr("states", std::int64_t{17});
    }
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<json::Value> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    lines.push_back(json::Parse(line));  // throws on malformed JSON
  }
  ASSERT_EQ(lines.size(), 2u);

  // Spans are emitted on destruction: children before parents.
  EXPECT_EQ(lines[0].At("name").AsString(), "inner");
  EXPECT_EQ(lines[0].At("depth").AsNumber(), 1);
  EXPECT_EQ(lines[0].At("attrs").At("states").AsNumber(), 17);
  EXPECT_EQ(lines[1].At("name").AsString(), "outer");
  EXPECT_EQ(lines[1].At("depth").AsNumber(), 0);
  EXPECT_EQ(lines[1].At("attrs").At("system").AsString(), "test");

  // The parent's interval covers the child's.
  const double outer_start = lines[1].At("start_us").AsNumber();
  const double outer_end = outer_start + lines[1].At("dur_us").AsNumber();
  const double inner_start = lines[0].At("start_us").AsNumber();
  const double inner_end = inner_start + lines[0].At("dur_us").AsNumber();
  EXPECT_LE(outer_start, inner_start);
  EXPECT_LE(inner_end, outer_end);
}

TEST(ScopedSpanTest, NullSinkIsANoop) {
  ScopedSpan span(nullptr, "ignored");
  span.Attr("key", "value");
  span.Attr("n", std::int64_t{1});
  // Also via the (unset) process-global sink.
  SetActiveTrace(nullptr);
  ScopedSpan global("also_ignored");
  global.Attr("x", 2.0);
}

// ---- Search progress ---------------------------------------------------------

constexpr const char* kUnlockApp = R"(
definition(name: "UnlockOnAway", namespace: "t")
preferences {
    section("S") {
        input "p1", "capability.presenceSensor"
        input "lock1", "capability.lock"
    }
}
def installed() {
    subscribe(p1, "presence.notpresent", handler)
}
def handler(evt) {
    lock1.unlock()
}
)";

model::SystemModel UnlockModel() {
  config::DeploymentBuilder b("home");
  b.Device("p1", "presenceSensor", {"presence"});
  b.Device("lock1", "smartLock", {"mainDoorLock"});
  b.App("UnlockOnAway").Devices("p1", {"p1"}).Devices("lock1", {"lock1"});
  std::vector<ir::AnalyzedApp> apps;
  apps.push_back(ir::AnalyzeSource(kUnlockApp, "UnlockOnAway"));
  return model::SystemModel(b.Build(), std::move(apps));
}

TEST(ProgressTest, CallbackFiresAtTheRequestedCadence) {
  model::SystemModel model = UnlockModel();
  checker::Checker checker(model);
  checker::CheckOptions options;
  options.max_events = 2;
  options.progress_every = 1;
  std::vector<ProgressSnapshot> seen;
  options.on_progress = [&seen](const ProgressSnapshot& snapshot) {
    seen.push_back(snapshot);
  };
  checker::CheckResult result = checker.Run(options);

  // Cadence 1 → one report per expanded state.
  EXPECT_EQ(seen.size(), result.states_explored);
  ASSERT_FALSE(seen.empty());
  const ProgressSnapshot& last = seen.back();
  EXPECT_LE(last.states_explored, result.states_explored);
  EXPECT_GE(last.elapsed_seconds, 0.0);
  EXPECT_GE(last.pruning_ratio, 0.0);
  EXPECT_LE(last.pruning_ratio, 1.0);
  EXPECT_EQ(last.depth_histogram.size(), result.depth_histogram.size());
}

TEST(ProgressTest, BudgetStopDeliversFinalSnapshot) {
  model::SystemModel model = UnlockModel();
  checker::Checker checker(model);
  checker::CheckOptions options;
  options.max_events = 3;
  options.max_states = 2;  // force an early stop
  std::vector<ProgressSnapshot> seen;
  options.on_progress = [&seen](const ProgressSnapshot& snapshot) {
    seen.push_back(snapshot);
  };
  checker::CheckResult result = checker.Run(options);

  EXPECT_FALSE(result.completed);
  // progress_every stayed 0, so the only report is the stop-time one.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen.back().states_explored, result.states_explored);
}

TEST(ProgressTest, FormatProgressMentionsTheHeadlineNumbers) {
  ProgressSnapshot snapshot;
  snapshot.states_explored = 1200;
  snapshot.states_matched = 300;
  snapshot.transitions = 4000;
  snapshot.states_per_second = 600;
  snapshot.pruning_ratio = 0.2;
  snapshot.depth_histogram = {1, 3, 8};
  const std::string line = FormatProgress(snapshot);
  EXPECT_NE(line.find("progress:"), std::string::npos);
  EXPECT_NE(line.find("1200"), std::string::npos);
  EXPECT_NE(line.find("4000"), std::string::npos);
}

// ---- Store diagnostics -------------------------------------------------------

TEST(StoreDiagnosticsTest, OmissionProbabilityIsFillToThePowerK) {
  checker::BitstateStore store(64, 2);
  for (int i = 0; i < 40; ++i) {
    std::uint8_t bytes[2] = {static_cast<std::uint8_t>(i),
                             static_cast<std::uint8_t>(i * 7)};
    store.TestAndInsert(bytes);
  }
  const double fill = store.FillRatio();
  ASSERT_GT(fill, 0.0);
  EXPECT_NEAR(store.EstOmissionProbability(), fill * fill, 1e-12);
}

TEST(StoreDiagnosticsTest, ExhaustiveStoreNeverOmits) {
  checker::ExhaustiveStore store;
  std::uint8_t bytes[1] = {1};
  store.TestAndInsert(bytes);
  EXPECT_EQ(store.FillRatio(), 0.0);
  EXPECT_EQ(store.EstOmissionProbability(), 0.0);
}

TEST(StoreDiagnosticsTest, CheckResultCarriesStoreDiagnostics) {
  model::SystemModel model = UnlockModel();
  checker::Checker checker(model);
  checker::CheckOptions options;
  options.max_events = 2;
  options.store = checker::StoreKind::kBitstate;
  options.bitstate_bits = 1 << 10;
  checker::CheckResult result = checker.Run(options);

  EXPECT_GT(result.store_entries, 0u);
  EXPECT_GT(result.store_memory_bytes, 0u);
  EXPECT_GT(result.store_fill_ratio, 0.0);
  EXPECT_GE(result.est_omission_probability, 0.0);
  std::uint64_t histogram_sum = 0;
  for (std::uint64_t count : result.depth_histogram) histogram_sum += count;
  EXPECT_EQ(histogram_sum, result.states_explored);
}

TEST(StoreDiagnosticsTest, RunPublishesGaugesToActiveRegistry) {
  Registry registry;
  SetActive(&registry);
  model::SystemModel model = UnlockModel();
  checker::Checker checker(model);
  checker::CheckOptions options;
  options.max_events = 1;
  options.store = checker::StoreKind::kBitstate;
  options.bitstate_bits = 1 << 10;
  checker::CheckResult result = checker.Run(options);
  SetActive(nullptr);

  EXPECT_EQ(registry.search.states_explored, result.states_explored);
  EXPECT_EQ(registry.pipeline.checks_run, 1u);
  EXPECT_EQ(registry.store.entries, result.store_entries);
  EXPECT_GT(registry.store.fill_permille, 0u);
  EXPECT_GT(registry.search.handler_dispatches, 0u);
}

}  // namespace
}  // namespace iotsan::telemetry
