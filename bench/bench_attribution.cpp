// Reproduces paper §10.3: violation attribution.
//
//   * the 9 ContexIoT-style malicious apps must be attributed as
//     potentially malicious with 100% phase-1 violation ratios;
//   * 11 potentially-bad market apps: several detected at 100% (bad
//     apps), the rest attributed to misconfiguration;
//   * 10 good market apps round out the input set.
#include <cstdio>
#include <string>
#include <vector>

#include "attrib/output_analyzer.hpp"
#include "config/builder.hpp"
#include "corpus/corpus.hpp"

using namespace iotsan;

namespace {

/// A reference home whose devices cover every candidate app's inputs.
config::Deployment BaseHome() {
  config::DeploymentBuilder b("attribution home");
  b.ContactPhone("555-0100");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("smokeDet", "smokeDetector", {"smokeSensor", "coSensor"});
  b.Device("valve1", "waterValve", {"waterValve"});
  b.Device("siren1", "smartAlarm", {"alarmSiren"});
  b.Device("panicButton", "buttonController");
  b.Device("hallMotion", "motionSensor", {"securityMotion"});
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("heaterOutlet", "smartOutlet", {"heaterOutlet"});
  b.Device("acOutlet", "smartOutlet", {"acOutlet"});
  b.Device("tempMeas", "temperatureSensor", {"tempSensor"});
  b.Device("hallLight", "smartSwitch", {"light"});
  b.Device("garageDoor", "garageDoorOpener", {"garageDoor"});
  b.Device("shade1", "windowShadeController", {"windowShade"});
  b.Device("lightMeter", "illuminanceSensor");
  b.Device("cam1", "camera", {"camera"});
  b.Device("speaker1", "speaker", {"speaker"});
  b.Device("leak1", "waterLeakSensor", {"leakSensor"});

  // Previously-installed apps: phase 2 verifies each candidate jointly
  // with these (§9).
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Lock It When I Leave")
      .Devices("people", {"alicePresence"})
      .Devices("locks", {"doorLock"})
      .Text("phone", "555-0100");
  b.App("Smart Security")
      .Devices("motions", {"hallMotion"})
      .Devices("contacts", {"frontDoor"})
      .Devices("alarms", {"siren1"})
      .Text("armedMode", "Away")
      .Text("phone", "555-0100");
  b.App("It's Too Cold")
      .Devices("temperatureSensor1", {"tempMeas"})
      .Number("temperature1", 65)
      .Devices("switch1", {"heaterOutlet"});
  return b.Build();
}

void Report(const std::string& kind, const std::vector<std::string>& apps,
            const config::Deployment& home, int* flagged,
            attrib::Verdict flag_as) {
  attrib::AttributionOptions options;
  options.enumeration.max_configs = 16;
  options.check.max_events = 2;
  std::printf("--- %s ---\n", kind.c_str());
  for (const std::string& name : apps) {
    attrib::AttributionResult result =
        attrib::AttributeCorpusApp(name, home, options);
    if (result.verdict == flag_as && flagged != nullptr) ++(*flagged);
    std::printf("%s\n", attrib::FormatAttribution(name, result).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const config::Deployment home = BaseHome();

  std::printf("=== §10.3: violation attribution ===\n\n");

  std::vector<std::string> malicious;
  for (const corpus::CorpusApp* app : corpus::MaliciousApps()) {
    malicious.push_back(app->name);
  }
  int malicious_flagged = 0;
  Report("9 ContexIoT-style malicious apps", malicious, home,
         &malicious_flagged, attrib::Verdict::kMalicious);

  // 11 potentially-bad market apps found in the Table 5 experiments.
  const std::vector<std::string> bad_market = {
      "Unlock Door",        "Big Turn On",      "Big Turn Off",
      "Vacation Lighting",  "Weather Logger",   "Remote Status Reporter",
      "Energy Saver",       "Let There Be Dark!", "Garage Door Opener",
      "Sunrise Shades",     "Switch Changes Mode"};
  Report("11 potentially-bad market apps", bad_market, home, nullptr,
         attrib::Verdict::kBadApp);

  const std::vector<std::string> good_market = {
      "Presence Change Push", "Camera On Motion",   "Lock It When I Leave",
      "Lock It At Night",     "Auto Lock Door",     "CO2 Vent",
      "Leak Guard",           "Welcome Home Lights", "Music When Home",
      "Curfew Check"};
  Report("10 good market apps", good_market, home, nullptr,
         attrib::Verdict::kClean);

  std::printf("malicious apps attributed: %d / 9\n\n", malicious_flagged);
  std::printf("paper expectation (§10.3): all 9 malicious apps attributed "
              "with 100%% ratios\n  (2 via information leakage, 2 via "
              "security-sensitive commands, 5 via unsafe\n  physical "
              "states); of the 11 market apps, ~6 at 100%% (bad apps), the "
              "rest\n  misconfiguration (70%% or lower, safe configs "
              "exist).\n");
  return malicious_flagged == 9 ? 0 : 1;
}
