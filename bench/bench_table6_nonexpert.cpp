// Reproduces paper Table 6: verification results with non-expert
// ("volunteer") configurations — 10 groups of ~5 related apps, 7 simulated
// volunteers each = 70 configurations (§10.1's user study).
#include <cstdio>
#include <set>
#include <string>

#include "attrib/config_enum.hpp"
#include "core/sanitizer.hpp"
#include "corpus/corpus.hpp"
#include "corpus/groups.hpp"
#include "dsl/parser.hpp"
#include "util/rng.hpp"

using namespace iotsan;

int main() {
  constexpr int kVolunteers = 7;
  int configurations = 0;
  int conflicting = 0;
  int repeated = 0;
  int unsafe_state = 0;
  int other = 0;
  std::set<std::string> violated_properties;
  std::set<std::string> conflict_props;
  std::set<std::string> repeat_props;
  std::set<std::string> unsafe_props;

  std::printf("=== Table 6: market apps with volunteer configurations ===\n");
  std::printf("(10 groups x %d simulated volunteers, seeded)\n\n",
              kVolunteers);
  std::printf("%-18s %s\n", "group", "violations per volunteer config");

  Rng rng(2018);  // the year of CoNEXT '18: fixed seed, reproducible
  for (const corpus::VolunteerGroup& group : corpus::VolunteerGroups()) {
    std::printf("%-18s ", group.name.c_str());
    for (int volunteer = 0; volunteer < kVolunteers; ++volunteer) {
      config::Deployment deployment = group.device_pool;
      for (const std::string& app_name : group.apps) {
        const corpus::CorpusApp* app = corpus::FindApp(app_name);
        dsl::App parsed = dsl::ParseApp(app->source, app_name);
        deployment.apps.push_back(
            attrib::GenerateVolunteerConfig(parsed, deployment, rng));
      }
      ++configurations;

      core::Sanitizer sanitizer(deployment);
      core::SanitizerOptions options;
      options.check.max_events = 3;
      core::SanitizerReport report = sanitizer.Check(options);

      int config_violations = 0;
      for (const checker::Violation& v : report.violations) {
        ++config_violations;
        violated_properties.insert(v.property_id);
        switch (v.kind) {
          case props::PropertyKind::kNoConflict:
            ++conflicting;
            conflict_props.insert(v.property_id);
            break;
          case props::PropertyKind::kNoRepeat:
            ++repeated;
            repeat_props.insert(v.property_id);
            break;
          case props::PropertyKind::kInvariant:
            ++unsafe_state;
            unsafe_props.insert(v.property_id);
            break;
          default:
            ++other;
            break;
        }
      }
      std::printf("%3d", config_violations);
    }
    std::printf("\n");
  }

  std::printf("\n%-28s %-22s %s\n", "Violation type", "violated properties",
              "violations");
  std::printf("%-28s %-22zu %d\n", "Conflicting commands",
              conflict_props.size(), conflicting);
  std::printf("%-28s %-22zu %d\n", "Repeated commands", repeat_props.size(),
              repeated);
  std::printf("%-28s %-22zu %d\n", "Unsafe physical states",
              unsafe_props.size(), unsafe_state);
  std::printf("%-28s %-22s %d\n", "Other (leakage/robustness)", "-", other);
  std::printf("%-28s %-22zu %d  (from %d configurations)\n", "TOTAL",
              violated_properties.size(),
              conflicting + repeated + unsafe_state + other, configurations);

  std::printf("\npaper expectation (Table 6): 70 configurations; 97 "
              "violations of 10 properties\n  (19 conflicting via 1 "
              "property, 12 repeated via 1, 66 unsafe states via 8).\n"
              "  Shape: non-expert configurations violate substantially "
              "more than expert ones,\n  with unsafe physical states "
              "dominating.\n");
  return 0;
}
