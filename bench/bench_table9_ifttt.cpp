// Reproduces paper Table 9 (§11): verification of 10 IFTTT rules in one
// smart home, using the IFTTT front-end (applet JSON -> one-handler apps).
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/sanitizer.hpp"
#include "ifttt/applet.hpp"
#include "util/strings.hpp"

using namespace iotsan;

namespace {

// Ten applets mirroring the paper's rule set: siren arming rules, voice
// disarm rules, unlock-on-voice/arrival rules, phone-call rules, and a
// benign switch rule.
constexpr const char* kApplets = R"JSON([
  {"name": "rule #1",
   "trigger": {"service": "smartthings_motion", "event": "active"},
   "action": {"service": "ring_siren", "command": "siren"}},
  {"name": "rule #2",
   "trigger": {"service": "smartthings_contact", "event": "closed"},
   "action": {"service": "ring_siren", "command": "siren"}},
  {"name": "rule #3",
   "trigger": {"service": "smartthings_contact", "event": "open"},
   "action": {"service": "ring_siren", "command": "strobe"}},
  {"name": "rule #4",
   "trigger": {"service": "amazon_alexa", "event": "alexa quiet"},
   "action": {"service": "ring_siren", "command": "off"}},
  {"name": "rule #5",
   "trigger": {"service": "smartthings_presence", "event": "notpresent"},
   "action": {"service": "august_lock", "command": "unlock"}},
  {"name": "rule #6",
   "trigger": {"service": "google_assistant", "event": "open sesame"},
   "action": {"service": "august_lock", "command": "unlock"}},
  {"name": "rule #7",
   "trigger": {"service": "smartthings_motion", "event": "active"},
   "action": {"service": "voip_call", "command": "ring"}},
  {"name": "rule #8",
   "trigger": {"service": "smartthings_contact", "event": "open"},
   "action": {"service": "voip_call", "command": "ring"}},
  {"name": "rule #9",
   "trigger": {"service": "smartthings_presence", "event": "present"},
   "action": {"service": "wemo_switch", "command": "on"}},
  {"name": "rule #10",
   "trigger": {"service": "amazon_alexa", "event": "alexa hang up"},
   "action": {"service": "voip_call", "command": "hangup"}}
])JSON";

}  // namespace

int main() {
  std::vector<ifttt::Applet> applets = ifttt::ParseApplets(kApplets);
  config::Deployment deployment = ifttt::BuildDeployment(applets);

  core::Sanitizer sanitizer(deployment);
  for (const auto& [name, source] : ifttt::RuleSources(applets)) {
    sanitizer.AddAppSource(name, source);
  }

  // Table 9's properties, as user-defined invariants over the service
  // roles (the built-ins also run).
  core::SanitizerOptions options;
  // The paper's IFTTT experiment verifies all rules installed in one
  // smart home as a single model.
  options.use_dependency_analysis = false;
  options.check.max_events = 3;
  options.extra_properties.push_back(props::MakeInvariant(
      "T1", "IFTTT", "Siren/strobe is activated when intruder (motion) is "
      "detected",
      R"(!(any("securityMotion", "motion") == "active"
          && all("alarmSiren", "alarm") == "off"))"));
  options.extra_properties.push_back(props::MakeInvariant(
      "T2", "IFTTT", "Siren/strobe is not activated when no intruder is "
      "detected",
      R"(!(any("alarmSiren", "alarm") != "off"
          && all("securityMotion", "motion") == "inactive"
          && all("frontDoorContact", "contact") == "closed"))"));
  options.extra_properties.push_back(props::MakeInvariant(
      "T3", "IFTTT", "The main/front door is locked when no one is at home",
      R"(!(all("presence", "presence") == "notpresent"
          && any("mainDoorLock", "lock") == "unlocked"))"));
  options.extra_properties.push_back(props::MakeInvariant(
      "T4", "IFTTT", "A phone call is triggered when intruder is detected",
      R"(!(any("securityMotion", "motion") == "active"
          && all("phoneCall", "call") == "idle"))"));

  core::SanitizerReport report = sanitizer.Check(options);

  std::printf("=== Table 9: verification results with IFTTT rules ===\n");
  std::printf("(%zu rules, %zu service devices)\n\n", applets.size(),
              deployment.devices.size());
  std::printf("%-55s %s\n", "Violated property", "Related rules");
  int violations = 0;
  int environment_only = 0;
  std::set<std::string> violated;
  for (const checker::Violation& v : report.per_set_violations) {
    if (v.kind != props::PropertyKind::kInvariant) continue;
    if (v.apps.empty()) {
      // No rule acted: the bad state arises from the environment alone
      // (no rule protects against it) — not attributable to a rule.
      ++environment_only;
      continue;
    }
    std::vector<std::string> rules = v.apps;
    std::sort(rules.begin(), rules.end());
    const std::string key = v.property_id + strings::Join(rules, ",");
    if (!violated.insert(key).second) continue;
    ++violations;
    std::printf("%-55s (%s)\n",
                (v.property_id + ": " + v.description).c_str(),
                strings::Join(rules, ", ").c_str());
  }
  std::printf("\ntotal: %d rule-attributable violations "
              "(+%d environment-only omissions)\n",
              violations, environment_only);

  std::printf("\npaper expectation (Table 9): 7 violations of 4 unsafe "
              "physical states —\n  siren not activated on intrusion "
              "(rules 1&4, 3&4), siren without intruder (rule 2),\n  door "
              "unlocked when no one home (rules 5, 6), phone call missing "
              "on intrusion\n  (rules 7&10, 8&10).\n");
  return 0;
}
