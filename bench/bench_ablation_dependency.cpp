// Ablation: the App Dependency Analyzer's effect on checking cost
// (paper §5): each expert group verified per related set vs. as one
// monolithic model, at the same event bound.  Both must find the same
// violated properties; the related-set decomposition explores far fewer
// states per model.
#include <cstdio>
#include <set>
#include <string>

#include "core/sanitizer.hpp"
#include "corpus/groups.hpp"

using namespace iotsan;

int main() {
  std::printf("=== Ablation: dependency analysis on/off ===\n");
  std::printf("(expert groups, depth 4, 60s budget per run)\n\n");
  std::printf("%-32s %14s %10s %14s %10s %s\n", "group", "states(sets)",
              "time", "states(mono)", "time", "same props?");

  for (const corpus::SystemUnderTest& sut : corpus::ExpertGroups()) {
    core::Sanitizer sanitizer(sut.deployment);
    for (const auto& [name, source] : sut.extra_sources) {
      sanitizer.AddAppSource(name, source);
    }
    core::SanitizerOptions options;
    options.check.max_events = 4;
    options.check.time_budget_seconds = 60;

    options.use_dependency_analysis = true;
    core::SanitizerReport with = sanitizer.Check(options);

    options.use_dependency_analysis = false;
    core::SanitizerReport without = sanitizer.Check(options);

    std::set<std::string> with_ids;
    for (const auto& v : with.violations) with_ids.insert(v.property_id);
    std::set<std::string> without_ids;
    for (const auto& v : without.violations) {
      without_ids.insert(v.property_id);
    }
    // Decomposed checking may find *more* (smaller models explore deeper
    // within budget); it must not lose monolithic findings.
    bool no_loss = true;
    for (const std::string& id : without_ids) {
      no_loss = no_loss && with_ids.count(id) > 0;
    }

    std::printf("%-32s %14llu %9.2fs %14llu %9.2fs %s\n",
                sut.deployment.name.c_str(),
                static_cast<unsigned long long>(with.states_explored),
                with.seconds,
                static_cast<unsigned long long>(without.states_explored),
                without.seconds, no_loss ? "yes" : "NO");
  }

  std::printf("\nexpectation: the related-set decomposition (paper §5) "
              "finds the same violated\n  properties as the monolithic "
              "model in every group.  Total state counts can go\n  either "
              "way at small depths (overlapping sets re-explore shared "
              "subspaces, while\n  the monolithic store merges them), but "
              "decomposition bounds the size of each\n  *individual* model "
              "— the limit that matters for Spin, whose Promela file-size\n"
              "  cap restricts IotSan to ~30 apps per model (paper §11).\n");
  return 0;
}
