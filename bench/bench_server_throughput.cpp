// Verification-service throughput: requests/sec through `iotsan serve`
// over loopback HTTP, cold (every check searches) vs warm (every check
// replays the shared ResultCache entry).
//
// The warm/cold gap IS the resident-server win the subsystem exists
// for: a one-shot CLI pays process startup + a full search per
// invocation, while the daemon's long-lived cache answers an unchanged
// (deployment, options) group without expanding a single state.
//
// Emits BENCH_STATS lines with requests/sec and latency percentiles:
//
//   BENCH_STATS {"bench":"server_throughput","label":"warm jobs=4",
//                "requests":256,"requests_per_second":...,
//                "p50_ms":...,"p99_ms":...}
//
// The percentiles come from the server's own request-duration histogram
// (telemetry server.request_duration_us, reset before each storm) — the
// same distribution `GET /v1/metrics?format=prometheus` exposes — so the
// bench exercises the production measurement path instead of keeping a
// private latency vector.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_stats.hpp"
#include "config/builder.hpp"
#include "server/server.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

using namespace iotsan;

namespace {

/// The §8 running example: small enough that HTTP framing and cache
/// lookup are visible next to the search, so the cold/warm gap is
/// measured honestly rather than swamped by one giant state space.
json::Value DeploymentJson() {
  config::DeploymentBuilder b("bench home");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  return config::DeploymentToJson(b.Build());
}

std::string CheckBody() {
  json::Object doc;
  doc["schema"] = "iotsan.request/1";
  doc["deployment"] = DeploymentJson();
  json::Object options;
  options["jobs"] = std::int64_t{1};
  doc["options"] = std::move(options);
  return json::Value(std::move(doc)).Dump(0);
}

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One POST /v1/check round trip on a fresh connection; returns the
/// latency in milliseconds, or a negative value on failure.
double TimedCheck(int port, const std::string& wire) {
  const auto start = std::chrono::steady_clock::now();
  const int fd = ConnectLoopback(port);
  if (fd < 0) return -1;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return -1;
    }
    sent += static_cast<std::size_t>(n);
  }
  // Connection: close — read to EOF, require a 200 status line.
  std::string data;
  char chunk[8192];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    data.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (data.rfind("HTTP/1.1 200", 0) != 0) return -1;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct RunStats {
  int requests = 0;
  int failures = 0;
  double seconds = 0;
  // Server-side handle-time percentiles, read back from the registry's
  // request-duration histogram after the storm.
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t max_us = 0;
};

RunStats Storm(telemetry::Registry& registry, int port, int clients,
               int per_client) {
  std::string body = CheckBody();
  std::string wire = "POST /v1/check HTTP/1.1\r\nHost: bench\r\n"
                     "Connection: close\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body;
  // Each storm owns the histogram's window: reset, storm, snapshot.
  registry.server_hist.request_duration_us.Reset();
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < per_client; ++i) {
        if (TimedCheck(port, wire) < 0) {
          failed.fetch_add(1);
        } else {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  RunStats out;
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.requests = ok.load();
  out.failures = failed.load();
  const telemetry::HistogramSnapshot snap =
      registry.server_hist.request_duration_us.TakeSnapshot();
  out.p50_ms = snap.P50() / 1000.0;
  out.p99_ms = snap.P99() / 1000.0;
  out.max_us = snap.max;
  return out;
}

void Report(const char* label, const RunStats& stats,
            std::uint64_t cache_hits) {
  const double rps =
      stats.seconds > 1e-9 ? stats.requests / stats.seconds : 0;
  std::printf("%-14s %6d req  %8.1f req/s  p50 %7.2fms  p99 %7.2fms  "
              "cache hits %llu%s\n",
              label, stats.requests, rps, stats.p50_ms, stats.p99_ms,
              static_cast<unsigned long long>(cache_hits),
              stats.failures > 0 ? "  (FAILURES)" : "");
  json::Object payload;
  payload["requests"] = stats.requests;
  payload["failures"] = stats.failures;
  payload["seconds"] = stats.seconds;
  payload["requests_per_second"] = rps;
  payload["p50_ms"] = stats.p50_ms;
  payload["p99_ms"] = stats.p99_ms;
  payload["max_us"] = static_cast<std::int64_t>(stats.max_us);
  payload["cache_hits"] = static_cast<std::int64_t>(cache_hits);
  bench::EmitStatsJson("server_throughput", label, std::move(payload));
}

}  // namespace

int main() {
  std::printf("=== verification service throughput (loopback HTTP) ===\n");
  std::printf("(POST /v1/check, §8 two-app home, 8 client threads)\n\n");

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "iotsan_bench_server_cache")
          .string();
  std::filesystem::remove_all(cache_dir);

  telemetry::Registry registry;
  telemetry::SetActive(&registry);

  server::ServerConfig config;
  config.port = 0;
  config.http_workers = 8;
  config.max_queue = 256;
  config.cache_dir = cache_dir;
  server::Server server(config);
  server.Start();

  constexpr int kClients = 8;
  constexpr int kPerClient = 32;

  // Cold: one serial request against the empty cache — the honest
  // "every invocation searches" number a one-shot CLI would pay (minus
  // process startup, which the daemon amortizes too).
  {
    const std::uint64_t hits_before = registry.cache.hits.load();
    RunStats cold = Storm(registry, server.port(), 1, 1);
    Report("cold serial", cold, registry.cache.hits.load() - hits_before);
  }

  {
    const std::uint64_t hits_before = registry.cache.hits.load();
    RunStats warm = Storm(registry, server.port(), kClients, kPerClient);
    Report("warm jobs=8", warm, registry.cache.hits.load() - hits_before);
  }

  server.Stop();
  telemetry::SetActive(nullptr);
  std::filesystem::remove_all(cache_dir);
  return 0;
}
