// Reproduces paper §5's running example: Table 2 (handler interfaces),
// Fig. 4a (dependency graph), and Tables 3a/3b/3c (related sets) for the
// five sample market apps.
#include <cstdio>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "deps/dependency_graph.hpp"
#include "ir/analyzer.hpp"
#include "util/strings.hpp"

using namespace iotsan;

namespace {

std::string PatternList(const std::vector<ir::EventPattern>& patterns) {
  std::vector<std::string> parts;
  for (const ir::EventPattern& p : patterns) parts.push_back(p.ToString());
  return strings::Join(parts, ", ");
}

std::string SetToString(const std::vector<int>& vertices) {
  std::vector<std::string> parts;
  for (int v : vertices) parts.push_back(std::to_string(v));
  return "{" + strings::Join(parts, ", ") + "}";
}

}  // namespace

int main() {
  const std::vector<std::string> names = {
      "Brighten Dark Places", "Let There Be Dark!", "Auto Mode Change",
      "Unlock Door", "Big Turn On"};

  std::vector<ir::AnalyzedApp> apps;
  for (const std::string& name : names) {
    const corpus::CorpusApp* app = corpus::FindApp(name);
    apps.push_back(ir::AnalyzeSource(app->source, name));
  }

  std::printf("=== Table 2: event handlers and input/output events ===\n");
  std::printf("%-4s %-22s %-22s %-38s %s\n", "id", "app", "handler",
              "input events", "output events");
  int vertex_id = 0;
  for (const ir::AnalyzedApp& app : apps) {
    for (const ir::HandlerInfo& handler : app.handlers) {
      std::printf("%-4d %-22s %-22s %-38s %s\n", vertex_id++,
                  app.app.name.c_str(), handler.name.c_str(),
                  PatternList(handler.inputs).c_str(),
                  PatternList(handler.outputs).c_str());
    }
  }

  deps::DependencyGraph graph = deps::DependencyGraph::Build(apps);

  std::printf("\n=== Fig. 4a: dependency graph edges ===\n");
  for (std::size_t u = 0; u < graph.children().size(); ++u) {
    for (int v : graph.children()[u]) {
      std::printf("  %zu -> %d\n", u, v);
    }
  }

  std::printf("\n=== Table 3a: initial related sets (leaf closures) ===\n");
  for (int leaf : graph.Leaves()) {
    std::printf("  leaf %d: %s\n", leaf,
                SetToString(graph.AncestorClosure(leaf)).c_str());
  }

  std::vector<deps::RelatedSet> sets = deps::ComputeRelatedSets(graph);
  std::printf("\n=== Table 3c / Fig. 4b: final related sets ===\n");
  for (const deps::RelatedSet& set : sets) {
    std::printf("  %s  (apps:", SetToString(set.vertices).c_str());
    for (int app : set.apps) std::printf(" %s;", names[app].c_str());
    std::printf(" %d handlers)\n", set.handler_count);
  }

  deps::ScaleStats stats = deps::ComputeScaleStats(apps);
  std::printf("\nscale: %d handlers -> largest related set %d (ratio %.1f)\n",
              stats.original_size, stats.new_size, stats.ratio);
  std::printf("\npaper expectation: final sets {3} {2,4} {0,1} {1,5} "
              "{1,2,6}\n");
  return 0;
}
