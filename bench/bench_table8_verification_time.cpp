// Reproduces paper Table 8: sequential verification time vs. number of
// events for a bigger violation-free system (5 related apps, 10 devices).
//
// The paper's times (6.61s at 6 events to 23.39h at 11) come from Spin
// exploring the event-permutation tree; absolute numbers depend on the
// engine, but the growth must be roughly geometric in the event bound.
// Each run gets a wall-clock budget; runs exceeding it print ">budget".
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_stats.hpp"
#include "cache/result_cache.hpp"
#include "config/builder.hpp"
#include "core/sanitizer.hpp"
#include "telemetry/telemetry.hpp"

using namespace iotsan;

namespace {

/// Five related apps over ten devices with no property violation (no
/// device carries a role, so no invariant applies, and no app pair
/// conflicts).  The observed sensors span large domains — two
/// temperature sensors, humidity, illuminance, and three battery levels —
/// so the reachable state space keeps growing deep into the event bound,
/// as in the paper's measurement.
config::Deployment QuietSystem() {
  config::DeploymentBuilder b("quiet system");
  b.Device("temp1", "temperatureSensor");
  b.Device("temp2", "temperatureSensor");
  b.Device("hum1", "humiditySensor");
  b.Device("lux1", "illuminanceSensor");
  b.Device("motion1", "motionSensor");
  b.Device("motion2", "motionSensor");
  b.Device("temp3", "temperatureSensor");
  b.Device("sw1", "smartSwitch");
  b.Device("sw2", "smartSwitch");
  b.Device("sw3", "smartSwitch");

  b.App("It's Too Cold")
      .Devices("temperatureSensor1", {"temp1"})
      .Number("temperature1", 65);
  b.App("It's Too Hot")
      .Devices("temperatureSensor1", {"temp2"})
      .Number("temperature1", 80);
  b.App("Smart Humidifier")
      .Devices("humidity1", {"hum1"})
      .Devices("humidifier", {"sw1"})
      .Number("dryPoint", 40);
  b.App("Turn On Before Sunset")
      .Devices("luminance1", {"lux1"})
      .Devices("switches", {"sw2", "sw3"})
      .Number("darkPoint", 100);
  b.App("Low Battery Notifier")
      .Devices("sensors", {"motion1", "motion2", "temp3", "temp2"})
      .Number("threshold", 20);
  return b.Build();
}

}  // namespace

int main() {
  const config::Deployment deployment = QuietSystem();
  constexpr double kBudget = 60.0;

  std::printf("=== Table 8: verification time vs number of events ===\n");
  std::printf("(5 related apps, 10 devices, sequential design, no "
              "violation)\n\n");
  std::printf("%-8s %-6s %-14s %-16s %-12s %s\n", "events", "jobs", "time",
              "states", "violations", "speedup");

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "iotsan_table8_cache")
          .string();

  double previous = 0;
  bool budget_hit = false;
  for (int events = 2; events <= 11 && !budget_hit; ++events) {
    // A fresh result cache per depth: the serial run fills it cold, the
    // warm re-check below measures the incremental-analysis win.
    std::filesystem::remove_all(cache_dir);
    cache::CacheConfig cache_config;
    cache_config.dir = cache_dir;
    cache::ResultCache cache(cache_config);
    // The --jobs sweep at each depth: serial first (the Table 8 number),
    // then the multi-threaded search over the same space.
    double serial_seconds = 0;
    for (int jobs : {1, 4}) {
      core::Sanitizer sanitizer(deployment);
      core::SanitizerOptions options;
      options.use_dependency_analysis = false;
      options.check.max_events = events;
      options.check.jobs = jobs;
      options.check.time_budget_seconds = kBudget;
      // Only the serial run writes the cache, so the jobs=4 timing stays
      // an honest full search.
      if (jobs == 1) options.cache = &cache;
      // A fresh registry per run so the group-check histogram covers
      // exactly this (events, jobs) point; BENCH_STATS then reports the
      // same p50/p99 the Prometheus exposition would.
      telemetry::Registry run_registry;
      telemetry::SetActive(&run_registry);
      const auto start = std::chrono::steady_clock::now();
      core::SanitizerReport report = sanitizer.Check(options);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      telemetry::SetActive(nullptr);
      const telemetry::HistogramSnapshot group_check =
          run_registry.search_hist.group_check_duration_us.TakeSnapshot();
      const telemetry::HistogramSnapshot states_rate =
          run_registry.search_hist.group_states_per_second.TakeSnapshot();
      if (jobs == 1) serial_seconds = wall;
      const double speedup = wall > 1e-9 ? serial_seconds / wall : 0;

      char time_buf[48];
      if (!report.completed) {
        std::snprintf(time_buf, sizeof(time_buf), ">%.0fs (budget)", kBudget);
      } else {
        std::snprintf(time_buf, sizeof(time_buf), "%.3fs", report.seconds);
      }
      char growth[32] = "";
      if (jobs == 1 && previous > 1e-4 && report.completed) {
        std::snprintf(growth, sizeof(growth), " (x%.1f)",
                      report.seconds / previous);
      }
      std::printf("%-8d %-6d %-14s %-16llu %-12zu x%.2f%s\n", events, jobs,
                  time_buf,
                  static_cast<unsigned long long>(report.states_explored),
                  report.violations.size(), speedup, growth);
      json::Object extra;
      extra["jobs"] = jobs;
      extra["wall_seconds"] = wall;
      extra["speedup_vs_serial"] = speedup;
      extra["group_check_p50_us"] = group_check.P50();
      extra["group_check_p99_us"] = group_check.P99();
      extra["states_per_second_p50"] = states_rate.P50();
      extra["states_per_second_p99"] = states_rate.P99();
      bench::EmitStats("table8",
                       "events=" + std::to_string(events) +
                           ",jobs=" + std::to_string(jobs),
                       report, std::move(extra));
      if (jobs == 1) previous = report.completed ? report.seconds : 0;
      // A budget hit means the next depth cannot finish either at any
      // jobs value we sweep; stop the table to bound CI time.
      if (!report.completed) {
        budget_hit = true;
        break;
      }
    }
    if (budget_hit) break;

    // Warm re-check against the cache the serial run just filled: an
    // unchanged deployment should skip the search entirely.
    {
      core::Sanitizer sanitizer(deployment);
      core::SanitizerOptions options;
      options.use_dependency_analysis = false;
      options.check.max_events = events;
      options.check.time_budget_seconds = kBudget;
      options.cache = &cache;
      telemetry::Registry registry;
      telemetry::SetActive(&registry);
      const auto start = std::chrono::steady_clock::now();
      core::SanitizerReport report = sanitizer.Check(options);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      telemetry::SetActive(nullptr);
      const std::uint64_t lookups = registry.cache.lookups;
      const std::uint64_t hits = registry.cache.hits;
      const double hit_rate =
          lookups > 0 ? static_cast<double>(hits) / lookups : 0;
      const double warm_speedup = wall > 1e-9 ? serial_seconds / wall : 0;
      std::printf("%-8d warm   %-14s hit_rate %.2f  warm_speedup x%.1f\n",
                  events, (std::to_string(wall).substr(0, 8) + "s").c_str(),
                  hit_rate, warm_speedup);
      json::Object extra;
      extra["jobs"] = 1;
      extra["wall_seconds"] = wall;
      extra["cache_hit_rate"] = hit_rate;
      extra["warm_speedup"] = warm_speedup;
      bench::EmitStats("table8",
                       "events=" + std::to_string(events) + ",cache=warm",
                       report, std::move(extra));
    }
  }
  std::filesystem::remove_all(cache_dir);

  std::printf("\npaper expectation (Table 8): 6.61s / 50.9s / 396s / 49.83m "
              "/ 5.89h / 23.39h for 6..11\n  events — roughly 7-8x per "
              "added event.  Shape: geometric growth in the event\n  "
              "bound (the Promela loop counter keeps every depth "
              "distinct), no violations found.\n");
  return 0;
}
