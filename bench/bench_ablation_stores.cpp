// Ablation: exhaustive state storage vs Spin-style BITSTATE hashing
// (paper §2.3).  BITSTATE trades completeness (hash collisions prune
// unvisited states) for constant memory; the paper relies on it for
// large systems.  This bench compares states explored, store memory, and
// violations found across bit-field sizes.
#include <cstdio>

#include "bench_stats.hpp"
#include "config/builder.hpp"
#include "core/sanitizer.hpp"

using namespace iotsan;

namespace {

config::Deployment MidSizeSystem() {
  config::DeploymentBuilder b("ablation system");
  b.Device("temp1", "temperatureSensor", {"tempSensor"});
  b.Device("hum1", "humiditySensor");
  b.Device("lux1", "illuminanceSensor");
  b.Device("motion1", "motionSensor");
  b.Device("motion2", "motionSensor");
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("sw1", "smartSwitch", {"light"});
  b.Device("sw2", "smartSwitch", {"light"});

  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  b.App("Brighten Dark Places")
      .Devices("contact1", {"frontDoor"})
      .Devices("luminance1", {"lux1"})
      .Devices("switches", {"sw1"});
  b.App("Let There Be Dark!")
      .Devices("contact1", {"frontDoor"})
      .Devices("switches", {"sw1", "sw2"});
  b.App("Smart Humidifier")
      .Devices("humidity1", {"hum1"})
      .Devices("humidifier", {"sw2"})
      .Number("dryPoint", 40);
  b.App("It's Too Cold")
      .Devices("temperatureSensor1", {"temp1"})
      .Number("temperature1", 65);
  b.App("Brighten My Path")
      .Devices("motion1", {"motion1"})
      .Devices("switches", {"sw2"});
  b.App("Darken Behind Me")
      .Devices("motion1", {"motion2"})
      .Devices("switches", {"sw1"});
  return b.Build();
}

void Run(const config::Deployment& deployment, const char* label,
         checker::StoreKind store, std::size_t bits,
         bool state_compression = false) {
  core::Sanitizer sanitizer(deployment);
  core::SanitizerOptions options;
  options.use_dependency_analysis = false;
  options.check.max_events = 5;
  options.check.store = store;
  options.check.bitstate_bits = bits;
  options.check.state_compression = state_compression;
  core::SanitizerReport report = sanitizer.Check(options);
  std::printf("%-24s %12llu %12llu %10zu %8.3fs  fill %.4f  omit %.3g",
              label,
              static_cast<unsigned long long>(report.states_explored),
              static_cast<unsigned long long>(report.states_matched),
              report.violations.size(), report.seconds,
              report.store_fill_ratio, report.est_omission_probability);
  if (store == checker::StoreKind::kExhaustive) {
    std::printf("  %.1f B/state", report.store_bytes_per_state);
  }
  if (state_compression && report.compress_lookups > 0) {
    std::printf("  intern hit %.1f%%",
                100.0 * static_cast<double>(report.compress_hits) /
                    static_cast<double>(report.compress_lookups));
  }
  std::printf("\n");
  bench::EmitStats("ablation_stores", label, report);
}

}  // namespace

int main() {
  const config::Deployment deployment = MidSizeSystem();

  std::printf("=== Ablation: exhaustive vs BITSTATE state storage ===\n");
  std::printf("(8 apps, 10 devices, depth 5, whole-system model)\n\n");
  std::printf("%-24s %12s %12s %10s %9s\n", "store", "explored", "matched",
              "violations", "time");
  Run(deployment, "exhaustive", checker::StoreKind::kExhaustive, 0);
  Run(deployment, "exhaustive + COLLAPSE", checker::StoreKind::kExhaustive,
      0, /*state_compression=*/true);
  Run(deployment, "bitstate 2^24 (2 MiB)", checker::StoreKind::kBitstate,
      std::size_t{1} << 24);
  Run(deployment, "bitstate 2^20 (128 KiB)", checker::StoreKind::kBitstate,
      std::size_t{1} << 20);
  Run(deployment, "bitstate 2^14 (2 KiB)", checker::StoreKind::kBitstate,
      std::size_t{1} << 14);
  Run(deployment, "bitstate 2^10 (128 B)", checker::StoreKind::kBitstate,
      std::size_t{1} << 10);

  std::printf("\nexpectation: with ample bits, BITSTATE explores the same "
              "state count as the\n  exhaustive store and finds the same "
              "violations in constant memory; as the\n  bit-field shrinks, "
              "hash saturation prunes unexplored states (Holzmann's\n  "
              "coverage analysis [45]) yet the headline violations are "
              "still found.\n  COLLAPSE keeps the exhaustive store exact "
              "while interning state components,\n  cutting bytes/state "
              "by >= 3x (the store_bytes_per_state gauge above).\n");
  return 0;
}
