// Reproduces paper Table 5: verification results for the 150 market apps
// in six expert-configured groups — violations by type, without and with
// device/communication failures (§10.2).
//
// Violation unit: one (group, property) pair, i.e. "this group's
// configuration violates this property" — the same property violated in
// another group counts again, matching how the paper tallies 38
// violations of 11 properties across its configurations.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "core/sanitizer.hpp"
#include "corpus/groups.hpp"
#include "util/strings.hpp"

using namespace iotsan;

namespace {

struct Tally {
  int conflicting = 0;
  int repeated = 0;
  int unsafe_state = 0;
  int leakage = 0;
  int robustness = 0;
  std::set<std::string> properties;
  std::map<std::string, std::string> examples;

  int total() const {
    return conflicting + repeated + unsafe_state + leakage + robustness;
  }
};

std::set<std::string> Count(const core::SanitizerReport& report,
                            Tally& tally) {
  std::set<std::string> group_props;
  for (const checker::Violation& v : report.violations) {
    if (!group_props.insert(v.property_id).second) continue;
    switch (v.kind) {
      case props::PropertyKind::kNoConflict: ++tally.conflicting; break;
      case props::PropertyKind::kNoRepeat: ++tally.repeated; break;
      case props::PropertyKind::kInvariant: ++tally.unsafe_state; break;
      case props::PropertyKind::kRobustness: ++tally.robustness; break;
      default: ++tally.leakage; break;
    }
    tally.properties.insert(v.property_id);
    if (!tally.examples.count(v.property_id) && !v.apps.empty()) {
      tally.examples[v.property_id] =
          v.description + "  (" + strings::Join(v.apps, ", ") + ")";
    }
  }
  return group_props;
}

}  // namespace

int main() {
  Tally base;
  Tally with_failures;
  // Distinct app pairs behind conflicting/repeated commands (the unit
  // the paper's Table 5 uses for those two rows).
  std::set<std::string> conflict_pairs;
  std::set<std::string> repeat_pairs;
  int failure_only_violations = 0;
  std::set<std::string> failure_only_properties;
  std::uint64_t states = 0;
  double seconds = 0;

  std::printf("=== Table 5: verification results with market apps ===\n");
  std::printf("(150 apps, 6 expert-configured groups)\n\n");
  std::printf("%-32s %-12s %-12s %s\n", "group", "violations",
              "+failures", "scale ratio");

  for (const corpus::SystemUnderTest& sut : corpus::ExpertGroups()) {
    core::Sanitizer sanitizer(sut.deployment);
    for (const auto& [name, source] : sut.extra_sources) {
      sanitizer.AddAppSource(name, source);
    }
    core::SanitizerOptions options;
    options.check.max_events = 3;

    core::SanitizerReport report = sanitizer.Check(options);
    std::set<std::string> base_props = Count(report, base);
    states += report.states_explored;
    seconds += report.seconds;
    for (const checker::Violation& v : report.per_set_violations) {
      std::vector<std::string> apps = v.apps;
      std::sort(apps.begin(), apps.end());
      if (v.kind == props::PropertyKind::kNoConflict) {
        conflict_pairs.insert(strings::Join(apps, "|"));
      } else if (v.kind == props::PropertyKind::kNoRepeat) {
        repeat_pairs.insert(strings::Join(apps, "|"));
      }
    }

    options.check.model_failures = true;
    options.check.max_events = 2;  // failure scenarios multiply transitions
    core::SanitizerReport failure_report = sanitizer.Check(options);
    std::set<std::string> failure_props = Count(failure_report,
                                                with_failures);
    states += failure_report.states_explored;
    seconds += failure_report.seconds;

    int extra = 0;
    for (const std::string& id : failure_props) {
      if (!base_props.count(id)) {
        ++extra;
        failure_only_properties.insert(id);
      }
    }
    failure_only_violations += extra;

    std::printf("%-32s %-12zu %-+12d %.1f\n", sut.deployment.name.c_str(),
                base_props.size(), extra, report.scale.ratio);
  }

  std::printf("\n%-28s %10s\n", "Violation type", "violations");
  std::printf("%-28s %10zu   (distinct app combinations)\n",
              "Conflicting commands", conflict_pairs.size());
  std::printf("%-28s %10zu   (distinct app combinations)\n",
              "Repeated commands", repeat_pairs.size());
  std::printf("%-28s %10d\n", "Unsafe physical states", base.unsafe_state);
  std::printf("%-28s %10d\n", "Leakage/suspicious behavior", base.leakage);
  std::printf("%-28s %10d   of %zu properties\n", "TOTAL (no failures)",
              base.total(), base.properties.size());
  std::printf("%-28s %10d   of %zu properties\n",
              "failure-induced (extra)", failure_only_violations,
              failure_only_properties.size());

  std::printf("\nexample violated properties:\n");
  int shown = 0;
  for (const auto& [id, example] : base.examples) {
    std::printf("  %s: %s\n", id.c_str(), example.c_str());
    if (++shown >= 8) break;
  }
  std::printf("\nfailure-induced property ids:");
  for (const std::string& id : failure_only_properties) {
    std::printf(" %s", id.c_str());
  }
  std::printf("\n\nstates explored: %llu, wall time: %.2fs\n",
              static_cast<unsigned long long>(states), seconds);
  std::printf("\npaper expectation (Table 5 + §10.2): 38 violations of 11 "
              "properties without failures\n  (8 conflicting, 10 repeated, "
              "20 unsafe-state); failures add 12 violations of 9\n  further "
              "properties.  Shape: app interactions dominate; every "
              "violation class\n  is populated; failures expose additional "
              "properties.\n");
  return 0;
}
