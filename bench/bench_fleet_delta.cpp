// Fleet delta re-verification latency: the p99 cost of re-checking a
// 150-app deployment after a one-app edit, against re-checking it from
// scratch.
//
// The registry's pitch is that a fleet PUT is an *edit*, not a new
// system: the delta engine fingerprints every related-set group and
// re-runs only the groups the revision touched, merging retained
// results for the rest (byte-identical to a cold full check — the
// registry_test asserts that; this bench measures what it buys).
//
//   BENCH_STATS {"bench":"fleet_delta","label":"full check",
//                "p50_ms":...,"p99_ms":...,"groups_total":150,...}
//   BENCH_STATS {"bench":"fleet_delta","label":"delta 1-app edit",
//                "p99_ms":...,"groups_recomputed":1,
//                "speedup_p99":...,"groups_rerun_fraction":0.0066}
//
// Acceptance (ISSUE 9): speedup_p99 >= 5, groups_rerun_fraction < 0.10.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_stats.hpp"
#include "config/deployment.hpp"
#include "core/service.hpp"
#include "registry/fleet.hpp"
#include "util/json.hpp"

using namespace iotsan;

namespace {

/// One violating presence/lock pair (the paper's §8 example) plus
/// `cold_apps` independent "It's Too Cold" instances on private
/// sensor/heater pairs — each its own related-set group, none touching
/// location mode, so a `threshold` edit on instance 0 dirties exactly
/// one group fingerprint.
json::Value DeploymentJson(int cold_apps, int threshold) {
  json::Array devices;
  json::Array apps;
  {
    json::Object presence;
    presence["id"] = "presence0";
    presence["type"] = "presenceSensor";
    presence["roles"] = json::Array{json::Value("presence")};
    devices.push_back(json::Value(std::move(presence)));
    json::Object lock;
    lock["id"] = "lock0";
    lock["type"] = "smartLock";
    lock["roles"] = json::Array{json::Value("mainDoorLock")};
    devices.push_back(json::Value(std::move(lock)));
    json::Object mode_app;
    mode_app["app"] = "Auto Mode Change";
    json::Object mode_inputs;
    mode_inputs["people"] = json::Array{json::Value("presence0")};
    mode_inputs["homeMode"] = "Home";
    mode_inputs["awayMode"] = "Away";
    mode_app["inputs"] = std::move(mode_inputs);
    apps.push_back(json::Value(std::move(mode_app)));
    json::Object unlock_app;
    unlock_app["app"] = "Unlock Door";
    json::Object unlock_inputs;
    unlock_inputs["lock1"] = json::Array{json::Value("lock0")};
    unlock_app["inputs"] = std::move(unlock_inputs);
    apps.push_back(json::Value(std::move(unlock_app)));
  }
  for (int i = 0; i < cold_apps; ++i) {
    json::Object sensor;
    sensor["id"] = "temp" + std::to_string(i);
    sensor["type"] = "motionTempSensor";
    devices.push_back(json::Value(std::move(sensor)));
    json::Object heater;
    heater["id"] = "heater" + std::to_string(i);
    heater["type"] = "smartSwitch";
    devices.push_back(json::Value(std::move(heater)));
    json::Object app;
    app["app"] = "It's Too Cold";
    json::Object inputs;
    inputs["temperatureSensor1"] =
        json::Array{json::Value("temp" + std::to_string(i))};
    inputs["temperature1"] = i == 0 ? threshold : 40;
    inputs["switch1"] =
        json::Array{json::Value("heater" + std::to_string(i))};
    app["inputs"] = std::move(inputs);
    apps.push_back(json::Value(std::move(app)));
  }
  json::Object doc;
  doc["name"] = "fleet bench home";
  doc["devices"] = std::move(devices);
  doc["apps"] = std::move(apps);
  return json::Value(std::move(doc));
}

registry::StoredDeployment Stored(int cold_apps, int threshold) {
  registry::StoredDeployment out;
  out.id = "bench";
  out.deployment = config::ParseDeployment(DeploymentJson(cold_apps,
                                                          threshold));
  return out;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

int main() {
  constexpr int kColdApps = 148;  // + the violating pair = 150 apps
  constexpr int kFullIters = 10;
  constexpr int kDeltaIters = 40;

  core::ServiceEnv env;
  core::RequestOptions options;
  options.jobs = 1;

  // Full re-checks: a fresh registry per iteration has no retained
  // record, so every group runs (what a fleet without delta pays on
  // every edit).
  std::vector<double> full_ms;
  std::uint64_t groups_total = 0;
  for (int i = 0; i < kFullIters; ++i) {
    registry::Fleet fleet{registry::StoreConfig{}};
    fleet.Put(Stored(kColdApps, 35 + i));
    const auto start = std::chrono::steady_clock::now();
    auto outcome = fleet.Check("bench", std::nullopt, options, env);
    full_ms.push_back(MillisSince(start));
    if (!outcome || outcome->groups_recomputed != outcome->groups_total) {
      std::fprintf(stderr, "fleet_delta: full check did not run cold\n");
      return 1;
    }
    groups_total = outcome->groups_total;
  }

  // Delta re-checks: one long-lived registry, each revision editing a
  // single app input (instance 0's temperature threshold).
  registry::Fleet fleet{registry::StoreConfig{}};
  fleet.Put(Stored(kColdApps, 40));
  fleet.Check("bench", std::nullopt, options, env);
  std::vector<double> delta_ms;
  std::uint64_t recomputed = 0;
  for (int i = 0; i < kDeltaIters; ++i) {
    fleet.Put(Stored(kColdApps, 50 + i));
    const auto start = std::chrono::steady_clock::now();
    auto outcome = fleet.Check("bench", std::nullopt, options, env);
    delta_ms.push_back(MillisSince(start));
    if (!outcome || outcome->groups_reused == 0) {
      std::fprintf(stderr, "fleet_delta: delta check reused nothing\n");
      return 1;
    }
    recomputed = outcome->groups_recomputed;
  }

  const double full_p50 = Percentile(full_ms, 0.50);
  const double full_p99 = Percentile(full_ms, 0.99);
  const double delta_p50 = Percentile(delta_ms, 0.50);
  const double delta_p99 = Percentile(delta_ms, 0.99);
  const double speedup = delta_p99 > 0 ? full_p99 / delta_p99 : 0;
  const double rerun_fraction =
      groups_total > 0
          ? static_cast<double>(recomputed) / static_cast<double>(groups_total)
          : 1.0;

  std::printf("fleet delta: %d apps, %llu groups\n", kColdApps + 2,
              static_cast<unsigned long long>(groups_total));
  std::printf("  full  p50 %8.2f ms   p99 %8.2f ms  (%d iters)\n", full_p50,
              full_p99, kFullIters);
  std::printf("  delta p50 %8.2f ms   p99 %8.2f ms  (%d iters, %llu/%llu "
              "groups re-run)\n",
              delta_p50, delta_p99, kDeltaIters,
              static_cast<unsigned long long>(recomputed),
              static_cast<unsigned long long>(groups_total));
  std::printf("  p99 speedup %.1fx\n", speedup);

  json::Object full_payload;
  full_payload["p50_ms"] = full_p50;
  full_payload["p99_ms"] = full_p99;
  full_payload["iterations"] = kFullIters;
  full_payload["apps"] = kColdApps + 2;
  full_payload["groups_total"] = static_cast<std::int64_t>(groups_total);
  bench::EmitStatsJson("fleet_delta", "full check", std::move(full_payload));

  json::Object delta_payload;
  delta_payload["p50_ms"] = delta_p50;
  delta_payload["p99_ms"] = delta_p99;
  delta_payload["iterations"] = kDeltaIters;
  delta_payload["groups_total"] = static_cast<std::int64_t>(groups_total);
  delta_payload["groups_recomputed"] = static_cast<std::int64_t>(recomputed);
  delta_payload["groups_rerun_fraction"] = rerun_fraction;
  delta_payload["speedup_p99"] = speedup;
  bench::EmitStatsJson("fleet_delta", "delta 1-app edit",
                       std::move(delta_payload));

  // Acceptance: the delta path must beat a from-scratch re-check by at
  // least 5x at p99 while re-running under 10% of the groups.
  if (speedup < 5.0 || rerun_fraction >= 0.10) {
    std::fprintf(stderr,
                 "fleet_delta: acceptance FAILED (speedup %.2f, rerun "
                 "fraction %.3f)\n",
                 speedup, rerun_fraction);
    return 1;
  }
  return 0;
}
