// Reproduces paper Fig. 8: two showcase violations.
//   (a) a 4-app interaction chain: lights off -> Good Night enters
//       sleeping mode -> Unlock Door unlocks the main door while people
//       sleep ("extremely difficult to spot manually", §1);
//   (b) a device-failure violation: the motion sensor fails, the
//       mode-change chain never runs, and the door is left unlocked when
//       people leave (with no notification to the user).
#include <cstdio>

#include "config/builder.hpp"
#include "core/sanitizer.hpp"

using namespace iotsan;

int main() {
  int failures = 0;

  {
    // Fig. 8a: Light Follows Me + Light Off When Close + Good Night +
    // Unlock Door.
    config::DeploymentBuilder b("fig8a home");
    b.Device("hallMotion", "motionSensor");
    b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
    b.Device("light1", "smartSwitch", {"light"});
    b.Device("light2", "smartSwitch", {"light"});
    b.Device("doorLock", "smartLock", {"mainDoorLock"});
    b.App("Light Follows Me")
        .Devices("motion1", {"hallMotion"})
        .Number("minutes1", 1)
        .Devices("switches", {"light1"});
    b.App("Light Off When Close")
        .Devices("contact1", {"frontDoor"})
        .Devices("switches", {"light2"});
    b.App("Good Night")
        .Devices("switches", {"light1", "light2"})
        .Text("sleepMode", "Night")
        .Text("startTime", "22:00");
    b.App("Unlock Door").Devices("lock1", {"doorLock"});

    core::Sanitizer sanitizer(b.Build());
    core::SanitizerOptions options;
    options.check.max_events = 4;
    core::SanitizerReport report = sanitizer.Check(options);

    std::printf("=== Fig. 8a: violation due to bad app interactions ===\n");
    std::printf("expected: the main door is unlocked when people are "
                "sleeping at night (P07),\n"
                "involving 4 apps.\n\n");
    if (const checker::Violation* v = [&report]() -> const checker::Violation* {
          for (const checker::Violation& violation : report.violations) {
            if (violation.property_id == "P07") return &violation;
          }
          return nullptr;
        }()) {
      std::printf("%s\n", checker::FormatViolation(*v).c_str());
    } else {
      std::printf("UNEXPECTED: P07 not violated\n");
      ++failures;
    }
  }

  {
    // Fig. 8b: Darken Behind Me + Switch Changes Mode + Make It So; the
    // motion sensor fails, so the chain that locks the door never runs.
    config::DeploymentBuilder b("fig8b home");
    b.Device("hallMotion", "motionSensor", {"securityMotion"});
    b.Device("porchLight", "smartSwitch", {"securityLight"});
    b.Device("doorLock", "smartLock", {"mainDoorLock"});
    b.Device("alicePresence", "presenceSensor", {"presence"});
    b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
    b.Device("siren1", "smartAlarm", {"alarmSiren"});
    b.App("Darken Behind Me")
        .Devices("motion1", {"hallMotion"})
        .Devices("switches", {"porchLight"});
    b.App("Switch Changes Mode")
        .Devices("trigger", {"porchLight"})
        .Text("offMode", "Away");
    b.App("Make It So")
        .Devices("locks", {"doorLock"})
        .Devices("offSwitches", {"porchLight"})
        .Text("awayMode", "Away");
    b.App("Unlock Door").Devices("lock1", {"doorLock"});
    b.App("Smart Security")
        .Devices("motions", {"hallMotion"})
        .Devices("contacts", {"frontDoor"})
        .Devices("alarms", {"siren1"})
        .Text("armedMode", "Away")
        .Text("phone", "555-0100");

    core::Sanitizer sanitizer(b.Build());
    core::SanitizerOptions options;
    options.check.max_events = 3;
    options.check.model_failures = true;
    core::SanitizerReport report = sanitizer.Check(options);

    std::printf("\n=== Fig. 8b: violation due to a device failure ===\n");
    std::printf("expected: with failures modeled, a failure-labelled "
                "violation appears\n"
                "(missed events leave the system unprotected).\n\n");
    bool found = false;
    for (const checker::Violation& v : report.violations) {
      if (v.failure.empty()) continue;
      std::printf("%s\n", checker::FormatViolation(v).c_str());
      found = true;
      break;
    }
    if (!found) {
      std::printf("UNEXPECTED: no failure-induced violation\n");
      ++failures;
    }
  }
  return failures;
}
