// Reproduces paper Fig. 7: the violation log (counter-example) for the §8
// running example — Alice's home with Auto Mode Change and Unlock Door,
// violating "the main door is unlocked when no one is at home".
//
// The recorded counter-example is then packaged as a violation artifact
// and replayed deterministically (Checker::Replay), timing the guided
// re-execution; trace size and replay cost are emitted as BENCH_STATS.
#include <cstdio>

#include "bench_stats.hpp"
#include "config/builder.hpp"
#include "core/sanitizer.hpp"
#include "corpus/corpus.hpp"
#include "ir/analyzer.hpp"
#include "model/system_model.hpp"

using namespace iotsan;

int main() {
  config::DeploymentBuilder b("alice's home");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  config::Deployment deployment = b.Build();

  core::Sanitizer sanitizer(deployment);
  core::SanitizerOptions options;
  options.check.max_events = 2;
  core::SanitizerReport report = sanitizer.Check(options);

  std::printf("=== Fig. 7: violation log (counter-example) ===\n\n");
  const checker::Violation* violation = nullptr;
  for (const checker::Violation& v : report.violations) {
    if (v.property_id != "P06") continue;
    violation = &v;
    std::printf("%s\n", checker::FormatViolation(v).c_str());
  }
  if (violation == nullptr) {
    std::printf("UNEXPECTED: P06 not violated\n");
    return 1;
  }
  std::printf("states explored: %llu, transitions: %llu\n",
              static_cast<unsigned long long>(report.states_explored),
              static_cast<unsigned long long>(report.transitions));

  // Package the counter-example as a violation artifact and replay it
  // deterministically against the model it was recorded on.
  checker::ViolationArtifact artifact = checker::MakeArtifact(
      *violation, options.check, deployment.name,
      config::DeploymentFingerprintHex(deployment));
  config::Deployment sub = deployment;
  sub.apps.clear();
  std::vector<ir::AnalyzedApp> analyzed;
  for (const config::AppConfig& app : deployment.apps) {
    for (const std::string& label : violation->model_apps) {
      if (app.label != label) continue;
      sub.apps.push_back(app);
      analyzed.push_back(
          ir::AnalyzeSource(corpus::FindApp(app.app)->source, app.app));
      break;
    }
  }
  model::SystemModel model(std::move(sub), std::move(analyzed));
  checker::Checker checker(model);
  checker::ReplayResult replay = checker.Replay(artifact);
  std::printf("\nreplay: %s (%.3fms)\n", replay.message.c_str(),
              replay.seconds * 1000.0);
  if (!replay.reproduced) {
    std::printf("UNEXPECTED: recorded counter-example did not reproduce\n");
    return 1;
  }

  json::Object payload;
  payload["seconds"] = report.seconds;
  payload["states_explored"] =
      static_cast<std::int64_t>(report.states_explored);
  payload["transitions"] = static_cast<std::int64_t>(report.transitions);
  payload["violations"] =
      static_cast<std::int64_t>(report.violations.size());
  payload["trace_steps"] =
      static_cast<std::int64_t>(violation->steps.size());
  payload["trace_lines"] =
      static_cast<std::int64_t>(violation->TraceLines().size());
  payload["replay_seconds"] = replay.seconds;
  payload["replay_reproduced"] = replay.reproduced;
  bench::EmitStatsJson("fig7_counterexample", "events=2", std::move(payload));

  std::printf("\npaper expectation: notpresent event -> Auto Mode Change ->"
              "\n  location.mode = Away -> Unlock Door -> unlock -> "
              "assertion violated\n");
  return 0;
}
