// Reproduces paper Fig. 7: the violation log (counter-example) for the §8
// running example — Alice's home with Auto Mode Change and Unlock Door,
// violating "the main door is unlocked when no one is at home".
#include <cstdio>

#include "config/builder.hpp"
#include "core/sanitizer.hpp"

using namespace iotsan;

int main() {
  config::DeploymentBuilder b("alice's home");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});

  core::Sanitizer sanitizer(b.Build());
  core::SanitizerOptions options;
  options.check.max_events = 2;
  core::SanitizerReport report = sanitizer.Check(options);

  std::printf("=== Fig. 7: violation log (counter-example) ===\n\n");
  bool found = false;
  for (const checker::Violation& v : report.violations) {
    if (v.property_id != "P06") continue;
    found = true;
    std::printf("%s\n", checker::FormatViolation(v).c_str());
  }
  if (!found) {
    std::printf("UNEXPECTED: P06 not violated\n");
    return 1;
  }
  std::printf("states explored: %llu, transitions: %llu\n",
              static_cast<unsigned long long>(report.states_explored),
              static_cast<unsigned long long>(report.transitions));
  std::printf("\npaper expectation: notpresent event -> Auto Mode Change ->"
              "\n  location.mode = Away -> Unlock Door -> unlock -> "
              "assertion violated\n");
  return 0;
}
