// Ablation: observed-only vs. all-sensor event permutation space.
//
// The Model Generator restricts Algorithm 1's permutation space to the
// (device, attribute) pairs some installed app actually observes — the
// companion optimization to §5's related sets ("the model checker should
// not have to check interactions that do not exist").  This bench
// measures what enumerating *every* sensor attribute instead would cost,
// and verifies both spaces find the same violated properties (events no
// app observes cannot change app behaviour; they can only re-time
// environment-violations).
#include <cstdio>
#include <set>
#include <string>

#include "core/sanitizer.hpp"
#include "corpus/groups.hpp"

using namespace iotsan;

int main() {
  std::printf("=== Ablation: observed-only vs all-sensor event space ===\n");
  std::printf("(expert groups, depth 2, 10s budget per related set)\n\n");
  std::printf("%-32s %14s %10s %14s %10s %s\n", "group", "states(obs)",
              "time", "states(all)", "time", "extra props (all)");

  for (const corpus::SystemUnderTest& sut : corpus::ExpertGroups()) {
    core::Sanitizer sanitizer(sut.deployment);
    for (const auto& [name, source] : sut.extra_sources) {
      sanitizer.AddAppSource(name, source);
    }
    core::SanitizerOptions options;
    options.check.max_events = 2;
    options.check.time_budget_seconds = 10;

    options.model.all_sensor_events = false;
    core::SanitizerReport observed = sanitizer.Check(options);

    options.model.all_sensor_events = true;
    core::SanitizerReport all = sanitizer.Check(options);

    std::set<std::string> observed_ids;
    for (const auto& v : observed.violations) {
      observed_ids.insert(v.property_id);
    }
    // Properties the full space flags beyond the observed space: these
    // involve sensor attributes no app subscribes to (alarm self-triggers,
    // battery drops, secondary CO channels) — environment transitions, not
    // app interactions.
    std::string extra;
    for (const auto& v : all.violations) {
      if (!observed_ids.count(v.property_id)) {
        extra += (extra.empty() ? "" : ",") + v.property_id;
      }
    }
    std::printf("%-32s %14llu %9.2fs %14llu %9.2fs %s\n",
                sut.deployment.name.c_str(),
                static_cast<unsigned long long>(observed.states_explored),
                observed.seconds,
                static_cast<unsigned long long>(all.states_explored),
                all.seconds,
                extra.empty() ? "none" : ("+" + extra).c_str());
  }

  std::printf("\nexpectation: the observed-only space explores 1-2 orders "
              "of magnitude fewer\n  states.  Anything it misses involves "
              "sensor attributes no installed app\n  observes (alarm "
              "self-triggers, battery drops, a detector's secondary "
              "channel)\n  — environment-driven states, not app "
              "interactions, which is why the paper's\n  generator "
              "enumerates only the configured inputs.\n");
  return 0;
}
