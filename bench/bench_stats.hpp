// Machine-readable stats emission for the bench harness.
//
// Each measurement prints one line of the form
//
//   BENCH_STATS {"bench":"table8","label":"events=6","seconds":0.667,...}
//
// so CI and ad-hoc tooling can `grep ^BENCH_STATS` and parse the JSON
// payload without scraping the human tables.  The payload carries the
// bench coordinates plus the SanitizerReport's search and store
// telemetry; when a telemetry::Registry is active its per-phase and
// counter snapshot is attached under "telemetry".
#pragma once

#include <cstdio>
#include <string>

#include "core/sanitizer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace iotsan::bench {

/// Generic form: stamps the bench coordinates onto a caller-built payload
/// and prints the line.  Benches without a SanitizerReport (e.g. the
/// dependency-analysis scalability table) use this directly.
inline void EmitStatsJson(const std::string& bench, const std::string& label,
                          json::Object payload) {
  payload["bench"] = bench;
  payload["label"] = label;
  std::printf("BENCH_STATS %s\n",
              json::Value(std::move(payload)).Dump(0).c_str());
}

/// `extra` entries (e.g. a jobs-sweep's "jobs"/"speedup_vs_serial") are
/// merged into the payload after the report fields, so they win on
/// key collisions.
inline void EmitStats(const std::string& bench, const std::string& label,
                      const core::SanitizerReport& report,
                      json::Object extra = {}) {
  json::Object payload;
  payload["seconds"] = report.seconds;
  payload["completed"] = report.completed;
  payload["states_explored"] =
      static_cast<std::int64_t>(report.states_explored);
  payload["states_matched"] =
      static_cast<std::int64_t>(report.states_matched);
  payload["transitions"] = static_cast<std::int64_t>(report.transitions);
  payload["cascade_drains"] =
      static_cast<std::int64_t>(report.cascade_drains);
  payload["violations"] = static_cast<std::int64_t>(report.violations.size());
  payload["store_fill_ratio"] = report.store_fill_ratio;
  payload["est_omission_probability"] = report.est_omission_probability;
  payload["store_memory_bytes"] =
      static_cast<std::int64_t>(report.store_memory_bytes);
  payload["store_entries"] = static_cast<std::int64_t>(report.store_entries);
  payload["store_bytes_per_state"] = report.store_bytes_per_state;
  if (report.compress_lookups > 0) {
    payload["compress_pool_entries"] =
        static_cast<std::int64_t>(report.compress_pool_entries);
    payload["compress_pool_bytes"] =
        static_cast<std::int64_t>(report.compress_pool_bytes);
    payload["compress_hit_rate"] =
        static_cast<double>(report.compress_hits) /
        static_cast<double>(report.compress_lookups);
  }
  json::Array depths;
  for (std::uint64_t count : report.depth_histogram) {
    depths.push_back(static_cast<std::int64_t>(count));
  }
  payload["depth_histogram"] = std::move(depths);
  if (telemetry::Registry* registry = telemetry::Active()) {
    payload["telemetry"] = registry->ToJson();
  }
  for (auto& [key, value] : extra) {
    payload[key] = std::move(value);
  }
  EmitStatsJson(bench, label, std::move(payload));
}

}  // namespace iotsan::bench
