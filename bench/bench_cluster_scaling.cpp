// Cluster scaling: one coordinator over 1..N local iotsan workers.
//
// Measures the distributed-swarm subsystem (src/cluster) on the Table 5
// violating-pair corpus scaled to many independent related-set groups:
// wall time, states/s, speedup vs a 1-worker cluster, and the dispatch
// overhead a 1-worker cluster pays over a plain in-process run (HTTP
// round trips + JSON round trips + merge).  Every configuration's
// verdicts must match the single-node report — the determinism claim —
// and, on machines with at least 2 hardware threads, the 2-worker
// configuration must reach a 1.6x speedup over 1 worker or the bench
// fails (the acceptance gate for the subsystem's reason to exist).
//
//   BENCH_STATS {"bench":"cluster_scaling","label":"single-node",...}
//   BENCH_STATS {"bench":"cluster_scaling","label":"workers=2",
//                "speedup_vs_1_worker":1.87,...}
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_stats.hpp"
#include "cluster/cluster.hpp"
#include "config/deployment.hpp"
#include "core/service.hpp"
#include "server/server.hpp"
#include "util/json.hpp"

namespace iotsan {
namespace {

/// `pairs` independent instances of the paper's §8 violating pair
/// (presence sensor + smart lock + Auto Mode Change + Unlock Door):
/// 2 related-set groups per pair, each a meaty exhaustive search, no
/// cross-group edges — the embarrassingly parallel shape the
/// coordinator shards.
config::Deployment Home(int pairs) {
  json::Array devices;
  json::Array apps;
  for (int i = 0; i < pairs; ++i) {
    json::Object presence;
    presence["id"] = "presence" + std::to_string(i);
    presence["type"] = "presenceSensor";
    presence["roles"] = json::Array{json::Value("presence")};
    devices.push_back(json::Value(std::move(presence)));
    json::Object lock;
    lock["id"] = "lock" + std::to_string(i);
    lock["type"] = "smartLock";
    lock["roles"] = json::Array{json::Value("mainDoorLock")};
    devices.push_back(json::Value(std::move(lock)));
    json::Object mode_app;
    mode_app["app"] = "Auto Mode Change";
    json::Object mode_inputs;
    mode_inputs["people"] =
        json::Array{json::Value("presence" + std::to_string(i))};
    mode_inputs["homeMode"] = "Home";
    mode_inputs["awayMode"] = "Away";
    mode_app["inputs"] = std::move(mode_inputs);
    apps.push_back(json::Value(std::move(mode_app)));
    json::Object unlock_app;
    unlock_app["app"] = "Unlock Door";
    json::Object unlock_inputs;
    unlock_inputs["lock1"] =
        json::Array{json::Value("lock" + std::to_string(i))};
    unlock_app["inputs"] = std::move(unlock_inputs);
    apps.push_back(json::Value(std::move(unlock_app)));
  }
  json::Object doc;
  doc["name"] = "cluster scaling home";
  doc["devices"] = std::move(devices);
  doc["apps"] = std::move(apps);
  return config::ParseDeployment(json::Value(std::move(doc)));
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace
}  // namespace iotsan

int main() {
  using namespace iotsan;

  constexpr int kPairs = 12;  // 24 independent related-set groups
  const unsigned hardware = std::thread::hardware_concurrency();

  core::CheckRequest request;
  request.deployment = Home(kPairs);
  request.options.jobs = 1;

  // Single-node baseline: the same plan executed in-process, no HTTP.
  const auto single_start = std::chrono::steady_clock::now();
  const core::CheckResponse single = core::RunCheck(request);
  const double single_seconds = SecondsSince(single_start);
  const std::string single_verdict = core::RenderViolations(single.report) +
                                     core::RenderResultLine(single.report);

  std::printf("cluster scaling: %d apps, %llu groups, %u hardware threads\n",
              kPairs * 2,
              static_cast<unsigned long long>(single.report.related_set_count),
              hardware);
  std::printf("  single-node    %7.2f s  %9.0f states/s\n", single_seconds,
              static_cast<double>(single.report.states_explored) /
                  single_seconds);
  {
    json::Object extra;
    extra["workers"] = 0;
    extra["wall_seconds"] = single_seconds;
    extra["states_per_second"] =
        static_cast<double>(single.report.states_explored) / single_seconds;
    bench::EmitStats("cluster_scaling", "single-node", single.report,
                     std::move(extra));
  }

  double one_worker_seconds = 0;
  double two_worker_speedup = 0;
  for (const int workers : {1, 2, 4}) {
    // N local worker processes in miniature: N in-process HTTP servers,
    // each searching serially.  The coordinator keeps one unit in
    // flight per worker, so cluster concurrency == worker count.
    std::vector<std::unique_ptr<server::Server>> fleet;
    cluster::ClusterOptions options;
    for (int i = 0; i < workers; ++i) {
      server::ServerConfig config;
      config.port = 0;
      config.jobs = 1;
      config.http_workers = 2;
      fleet.push_back(std::make_unique<server::Server>(std::move(config)));
      fleet.back()->Start();
      options.workers.push_back({"127.0.0.1", fleet.back()->port()});
    }
    cluster::Coordinator coordinator(std::move(options));

    const auto start = std::chrono::steady_clock::now();
    const cluster::ClusterOutcome outcome = coordinator.Check(request);
    const double seconds = SecondsSince(start);
    for (auto& server : fleet) server->Stop();

    const std::string verdict =
        core::RenderViolations(outcome.response.report) +
        core::RenderResultLine(outcome.response.report);
    if (verdict != single_verdict ||
        outcome.response.report.states_explored !=
            single.report.states_explored) {
      std::fprintf(stderr,
                   "cluster_scaling: %d-worker report diverged from "
                   "single-node\n",
                   workers);
      return 1;
    }
    if (outcome.units_local != 0 || outcome.degraded_local) {
      std::fprintf(stderr,
                   "cluster_scaling: %d-worker run fell back to local "
                   "execution\n",
                   workers);
      return 1;
    }

    if (workers == 1) one_worker_seconds = seconds;
    const double speedup =
        workers == 1 ? 1.0 : one_worker_seconds / seconds;
    if (workers == 2) two_worker_speedup = speedup;
    const double overhead_pct =
        (one_worker_seconds - single_seconds) / single_seconds * 100.0;

    std::printf("  workers=%d      %7.2f s  %9.0f states/s  "
                "speedup %4.2fx\n",
                workers, seconds,
                static_cast<double>(outcome.response.report.states_explored) /
                    seconds,
                speedup);

    json::Object extra;
    extra["workers"] = workers;
    extra["wall_seconds"] = seconds;
    extra["states_per_second"] =
        static_cast<double>(outcome.response.report.states_explored) / seconds;
    extra["speedup_vs_1_worker"] = speedup;
    extra["dispatch_overhead_pct"] = overhead_pct;
    extra["units_total"] = static_cast<std::int64_t>(outcome.units_total);
    extra["units_redispatched"] =
        static_cast<std::int64_t>(outcome.units_redispatched);
    bench::EmitStats("cluster_scaling",
                     "workers=" + std::to_string(workers),
                     outcome.response.report, std::move(extra));
  }

  const double dispatch_overhead_pct =
      (one_worker_seconds - single_seconds) / single_seconds * 100.0;
  std::printf("  1-worker dispatch overhead %.1f%% over single-node\n",
              dispatch_overhead_pct);

  // Acceptance gate: distributing over 2 workers must buy at least a
  // 1.6x speedup — anything less means dispatch overhead ate the
  // parallelism and the subsystem failed at its one job.  Only
  // enforceable where 2 workers can actually run concurrently.
  if (hardware >= 2 && two_worker_speedup < 1.6) {
    std::fprintf(stderr,
                 "cluster_scaling: 2-worker speedup %.2fx below the 1.6x "
                 "acceptance floor\n",
                 two_worker_speedup);
    return 1;
  }
  if (hardware < 2) {
    std::printf("  (1 hardware thread: 1.6x speedup gate not enforceable)\n");
  }
  return 0;
}
