// Reproduces paper Table 7b: runtimes of the concurrent vs. sequential
// designs (§8's concurrency model, §10.5).
//
// System under test, as in §10.1 "Performance": the two bad groups
// (Auto Mode Change, Unlock Door) and (Brighten Dark Places, Let There Be
// Dark) plus the good group (Good Night, It's Too Cold), controlling 3
// switch devices, 3 motion sensors, and 1 temperature sensor.
//
// The concurrent design explores every interleaving of internal events;
// the paper reports it taking "forever" (stopped after a week) at 4
// events.  We cap each concurrent run with a wall-clock budget and print
// ">budget" when it is exceeded — the equivalent of the paper's entry.
#include <cstdio>
#include <string>

#include "config/builder.hpp"
#include "core/sanitizer.hpp"

using namespace iotsan;

namespace {

config::Deployment PerformanceSystem() {
  config::DeploymentBuilder b("performance system");
  b.Device("switch1", "smartSwitch", {"light"});
  b.Device("switch2", "smartSwitch", {"light"});
  b.Device("switch3", "smartSwitch", {"light"});
  b.Device("motion1", "motionSensor");
  b.Device("motion2", "motionSensor");
  b.Device("motion3", "motionSensor");
  b.Device("tempMeas", "temperatureSensor", {"tempSensor"});
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("lightMeter", "illuminanceSensor");

  // Bad group 1.
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  // Bad group 2: both apps drive all three switches, so one contact
  // event floods the queue with six conflicting internal events — the
  // interleaving explosion the concurrent design must explore.
  b.App("Brighten Dark Places")
      .Devices("contact1", {"frontDoor"})
      .Devices("luminance1", {"lightMeter"})
      .Devices("switches", {"switch1", "switch2", "switch3"});
  b.App("Let There Be Dark!")
      .Devices("contact1", {"frontDoor"})
      .Devices("switches", {"switch1", "switch2", "switch3"});
  // Good group.
  b.App("Good Night")
      .Devices("switches", {"switch1", "switch2", "switch3"})
      .Text("sleepMode", "Night")
      .Text("startTime", "22:00");
  b.App("It's Too Cold")
      .Devices("temperatureSensor1", {"tempMeas"})
      .Number("temperature1", 65)
      .Devices("switch1", {"switch3"});
  // Motion-reactive apps so the motion sensors participate.
  b.App("Brighten My Path")
      .Devices("motion1", {"motion1"})
      .Devices("switches", {"switch2"});
  b.App("Darken Behind Me")
      .Devices("motion1", {"motion2"})
      .Devices("switches", {"switch3"});
  b.App("Automated Light")
      .Devices("motionSensor", {"motion3"})
      .Devices("lights", {"switch1"})
      .Number("offDelay", 1);
  return b.Build();
}

std::string RunOnce(const config::Deployment& deployment, int events,
                    model::Scheduling scheduling, double budget_seconds,
                    bool& exceeded) {
  core::Sanitizer sanitizer(deployment);
  core::SanitizerOptions options;
  options.use_dependency_analysis = false;  // one whole-system model
  options.check.max_events = events;
  options.check.scheduling = scheduling;
  options.check.time_budget_seconds = budget_seconds;
  core::SanitizerReport report = sanitizer.Check(options);
  exceeded = !report.completed;
  char buffer[64];
  if (!report.completed) {
    std::snprintf(buffer, sizeof(buffer), ">%.0fs (budget)", budget_seconds);
  } else if (report.seconds < 1) {
    std::snprintf(buffer, sizeof(buffer), "%.3fs", report.seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", report.seconds);
  }
  return buffer;
}

}  // namespace

int main() {
  const config::Deployment deployment = PerformanceSystem();
  constexpr double kBudget = 15.0;

  std::printf("=== Table 7b: concurrent vs sequential design runtimes ===\n");
  std::printf("(2 bad groups + 1 good group; 3 switches, 3 motion sensors, "
              "1 temperature sensor)\n\n");
  std::printf("%-10s %-18s %s\n", "events", "concurrent", "sequential");

  bool concurrent_dead = false;
  for (int events = 1; events <= 7; ++events) {
    std::string concurrent = "(skipped: exceeded budget earlier)";
    if (!concurrent_dead) {
      bool exceeded = false;
      concurrent = RunOnce(deployment, events,
                           model::Scheduling::kConcurrent, kBudget,
                           exceeded);
      concurrent_dead = exceeded;
    }
    bool seq_exceeded = false;
    std::string sequential = RunOnce(
        deployment, events, model::Scheduling::kSequential, kBudget,
        seq_exceeded);
    std::printf("%-10d %-18s %s\n", events, concurrent.c_str(),
                sequential.c_str());
  }

  std::printf("\npaper expectation (Table 7b): concurrent 1s / 56.5s / 139m "
              "/ forever; sequential <= 16.3s\n  up to 7 events.  Shape: "
              "the concurrent design blows up combinatorially within a\n"
              "  few events while the sequential design stays fast.\n");
  return 0;
}
