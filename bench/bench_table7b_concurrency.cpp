// Reproduces paper Table 7b: runtimes of the concurrent vs. sequential
// designs (§8's concurrency model, §10.5).
//
// System under test, as in §10.1 "Performance": the two bad groups
// (Auto Mode Change, Unlock Door) and (Brighten Dark Places, Let There Be
// Dark) plus the good group (Good Night, It's Too Cold), controlling 3
// switch devices, 3 motion sensors, and 1 temperature sensor.
//
// The concurrent design explores every interleaving of internal events;
// the paper reports it taking "forever" (stopped after a week) at 4
// events.  We cap each concurrent run with a wall-clock budget and print
// ">budget" when it is exceeded — the equivalent of the paper's entry.
// `--por` adds a reduced-concurrent column (ample-set partial-order
// reduction); `--state-compression` runs the reduced column with
// COLLAPSE store keys too.  When both the full and the reduced runs
// complete at a depth, their violated-property sets must match — a
// mismatch fails the bench (exit 1), so CI exercises POR soundness on
// the very system whose interleavings it prunes.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_stats.hpp"
#include "config/builder.hpp"
#include "core/sanitizer.hpp"

using namespace iotsan;

namespace {

config::Deployment PerformanceSystem() {
  config::DeploymentBuilder b("performance system");
  b.Device("switch1", "smartSwitch", {"light"});
  b.Device("switch2", "smartSwitch", {"light"});
  b.Device("switch3", "smartSwitch", {"light"});
  b.Device("motion1", "motionSensor");
  b.Device("motion2", "motionSensor");
  b.Device("motion3", "motionSensor");
  b.Device("tempMeas", "temperatureSensor", {"tempSensor"});
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("lightMeter", "illuminanceSensor");

  // Bad group 1.
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  // Bad group 2: both apps drive all three switches, so one contact
  // event floods the queue with six conflicting internal events — the
  // interleaving explosion the concurrent design must explore.
  b.App("Brighten Dark Places")
      .Devices("contact1", {"frontDoor"})
      .Devices("luminance1", {"lightMeter"})
      .Devices("switches", {"switch1", "switch2", "switch3"});
  b.App("Let There Be Dark!")
      .Devices("contact1", {"frontDoor"})
      .Devices("switches", {"switch1", "switch2", "switch3"});
  // Good group.
  b.App("Good Night")
      .Devices("switches", {"switch1", "switch2", "switch3"})
      .Text("sleepMode", "Night")
      .Text("startTime", "22:00");
  b.App("It's Too Cold")
      .Devices("temperatureSensor1", {"tempMeas"})
      .Number("temperature1", 65)
      .Devices("switch1", {"switch3"});
  // Motion-reactive apps so the motion sensors participate.
  b.App("Brighten My Path")
      .Devices("motion1", {"motion1"})
      .Devices("switches", {"switch2"});
  b.App("Darken Behind Me")
      .Devices("motion1", {"motion2"})
      .Devices("switches", {"switch3"});
  b.App("Automated Light")
      .Devices("motionSensor", {"motion3"})
      .Devices("lights", {"switch1"})
      .Number("offDelay", 1);
  return b.Build();
}

struct RunOutcome {
  core::SanitizerReport report;
  std::string cell;       // human table cell: time + states expanded
  bool exceeded = false;  // hit the wall-clock budget
};

RunOutcome RunOnce(const config::Deployment& deployment, int events,
                   model::Scheduling scheduling, double budget_seconds,
                   bool por, bool compression, const char* label) {
  core::Sanitizer sanitizer(deployment);
  core::SanitizerOptions options;
  options.use_dependency_analysis = false;  // one whole-system model
  options.check.max_events = events;
  options.check.scheduling = scheduling;
  options.check.time_budget_seconds = budget_seconds;
  options.check.por = por;
  options.check.state_compression = compression;
  RunOutcome out;
  out.report = sanitizer.Check(options);
  out.exceeded = !out.report.completed;
  char buffer[64];
  if (out.exceeded) {
    std::snprintf(buffer, sizeof(buffer), ">%.0fs (budget)", budget_seconds);
  } else {
    char time_buf[32];
    std::snprintf(time_buf, sizeof(time_buf),
                  out.report.seconds < 1 ? "%.3fs" : "%.2fs",
                  out.report.seconds);
    std::snprintf(buffer, sizeof(buffer), "%s (%llu st)", time_buf,
                  static_cast<unsigned long long>(
                      out.report.states_explored));
  }
  out.cell = buffer;
  json::Object extra;
  extra["events"] = static_cast<std::int64_t>(events);
  extra["por"] = por;
  extra["state_compression"] = compression;
  bench::EmitStats("table7b", std::string(label) + " events=" +
                                  std::to_string(events),
                   out.report, std::move(extra));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool por = false;
  bool compression = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--por") == 0) {
      por = true;
    } else if (std::strcmp(argv[i], "--state-compression") == 0) {
      compression = true;
      por = true;  // the reduced column is what compression rides on
    } else {
      std::fprintf(stderr,
                   "usage: bench_table7b_concurrency [--por] "
                   "[--state-compression]\n");
      return 2;
    }
  }

  const config::Deployment deployment = PerformanceSystem();
  constexpr double kBudget = 15.0;

  std::printf("=== Table 7b: concurrent vs sequential design runtimes ===\n");
  std::printf("(2 bad groups + 1 good group; 3 switches, 3 motion sensors, "
              "1 temperature sensor)\n\n");
  if (por) {
    std::printf("%-8s %-22s %-22s %s\n", "events", "concurrent (full)",
                compression ? "reduced (por+collapse)" : "reduced (por)",
                "sequential");
  } else {
    std::printf("%-8s %-22s %s\n", "events", "concurrent", "sequential");
  }

  int exit_code = 0;
  bool full_dead = false;
  bool reduced_dead = false;
  for (int events = 1; events <= 7; ++events) {
    std::string full_cell = "(skipped)";
    core::SanitizerReport full_report;
    bool full_ok = false;
    if (!full_dead) {
      RunOutcome full =
          RunOnce(deployment, events, model::Scheduling::kConcurrent,
                  kBudget, false, false, "concurrent-full");
      full_dead = full.exceeded;
      full_ok = !full.exceeded;
      full_cell = full.cell;
      full_report = std::move(full.report);
    }

    std::string reduced_cell = "(skipped)";
    if (por && !reduced_dead) {
      RunOutcome reduced =
          RunOnce(deployment, events, model::Scheduling::kConcurrent,
                  kBudget, true, compression, "concurrent-reduced");
      reduced_dead = reduced.exceeded;
      reduced_cell = reduced.cell;
      // POR soundness check: whenever both searches finish, the reduced
      // one must report exactly the same violated properties.
      if (full_ok && !reduced.exceeded &&
          reduced.report.ViolatedPropertyIds() !=
              full_report.ViolatedPropertyIds()) {
        std::printf("MISMATCH at events=%d: reduced and full searches "
                    "disagree on violations\n", events);
        exit_code = 1;
      }
    }

    RunOutcome sequential =
        RunOnce(deployment, events, model::Scheduling::kSequential, kBudget,
                false, false, "sequential");
    if (por) {
      std::printf("%-8d %-22s %-22s %s\n", events, full_cell.c_str(),
                  reduced_cell.c_str(), sequential.cell.c_str());
    } else {
      std::printf("%-8d %-22s %s\n", events, full_cell.c_str(),
                  sequential.cell.c_str());
    }
  }

  std::printf("\npaper expectation (Table 7b): concurrent 1s / 56.5s / 139m "
              "/ forever; sequential <= 16.3s\n  up to 7 events.  Shape: "
              "the concurrent design blows up combinatorially within a\n"
              "  few events while the sequential design stays fast");
  if (por) {
    std::printf(";\n  --por prunes commuting interleavings, so the reduced "
                "column reaches depths the\n  full expansion cannot touch "
                "within budget, with identical verdicts");
  }
  std::printf(".\n");
  return exit_code;
}
