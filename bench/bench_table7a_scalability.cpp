// Reproduces paper Table 7a: scalability benefit of the App Dependency
// Analyzer — per group, the total number of event handlers vs. the
// largest related set's handler count, and the resulting scale ratio.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_stats.hpp"
#include "core/sanitizer.hpp"
#include "corpus/corpus.hpp"
#include "corpus/groups.hpp"
#include "deps/dependency_graph.hpp"
#include "ir/analyzer.hpp"

using namespace iotsan;

namespace {

/// Multi-threaded verification sweep over the largest expert group: the
/// same check at jobs = 1/2/4, reporting wall-clock speedup vs. serial.
/// The related sets and root branches of a big group are what the pool
/// partitions, so this is the scalability story Table 7a's dependency
/// analysis sets up.
void JobsSweep(const corpus::SystemUnderTest& sut, int group_index) {
  std::printf("\n--- verification jobs sweep (group %d, %d apps) ---\n",
              group_index, sut.app_count());
  std::printf("%-8s %-12s %-16s %s\n", "jobs", "time", "states", "speedup");

  double serial_seconds = 0;
  for (int jobs : {1, 2, 4}) {
    core::Sanitizer sanitizer(sut.deployment);
    for (const auto& [name, source] : sut.extra_sources) {
      sanitizer.AddAppSource(name, source);
    }
    core::SanitizerOptions options;
    options.check.max_events = 2;
    options.check.jobs = jobs;
    const auto start = std::chrono::steady_clock::now();
    core::SanitizerReport report = sanitizer.Check(options);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (jobs == 1) serial_seconds = wall;
    const double speedup = wall > 1e-9 ? serial_seconds / wall : 0;
    std::printf("%-8d %-12.3f %-16llu x%.2f\n", jobs, wall,
                static_cast<unsigned long long>(report.states_explored),
                speedup);
    json::Object extra;
    extra["jobs"] = jobs;
    extra["wall_seconds"] = wall;
    extra["speedup_vs_serial"] = speedup;
    bench::EmitStats("table7a_jobs",
                     "group=" + std::to_string(group_index) +
                         ",jobs=" + std::to_string(jobs),
                     report, std::move(extra));
  }
}

}  // namespace

int main() {
  std::printf("=== Table 7a: scalability with dependency graphs ===\n\n");
  std::printf("%-8s %-14s %-10s %s\n", "Group", "Original Size", "New Size",
              "Scale Ratio");

  double ratio_sum = 0;
  int group_index = 0;
  int largest_group = 0;
  int largest_size = -1;
  for (const corpus::SystemUnderTest& sut : corpus::ExpertGroups()) {
    ++group_index;
    std::vector<ir::AnalyzedApp> apps;
    for (const config::AppConfig& instance : sut.deployment.apps) {
      const corpus::CorpusApp* base = corpus::FindApp(instance.app);
      std::string source;
      if (base != nullptr) {
        source = base->source;
      } else {
        source = sut.extra_sources.at(instance.app);
      }
      apps.push_back(ir::AnalyzeSource(source, instance.app));
    }
    deps::ScaleStats stats = deps::ComputeScaleStats(apps);
    ratio_sum += stats.ratio;
    if (stats.original_size > largest_size) {
      largest_size = stats.original_size;
      largest_group = group_index;
    }
    std::printf("%-8d %-14d %-10d %.1f\n", group_index, stats.original_size,
                stats.new_size, stats.ratio);
    json::Object payload;
    payload["original_size"] = stats.original_size;
    payload["new_size"] = stats.new_size;
    payload["scale_ratio"] = stats.ratio;
    bench::EmitStatsJson("table7a", "group=" + std::to_string(group_index),
                         std::move(payload));
  }
  std::printf("%-8s %-14s %-10s %.1f\n", "", "", "Mean",
              ratio_sum / group_index);

  JobsSweep(corpus::ExpertGroups()[static_cast<std::size_t>(largest_group - 1)],
            largest_group);

  std::printf("\npaper expectation (Table 7a): per-group ratios "
              "3.4/5.4/1.5/2.5/2.2/5.7, mean 3.4x.\n  Shape: every group "
              "shrinks; the mean reduction is severalfold.  The jobs sweep "
              "adds\n  the --jobs dimension: identical reports at every "
              "jobs value, wall-clock\n  dropping with cores.\n");
  return 0;
}
