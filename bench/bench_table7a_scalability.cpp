// Reproduces paper Table 7a: scalability benefit of the App Dependency
// Analyzer — per group, the total number of event handlers vs. the
// largest related set's handler count, and the resulting scale ratio.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_stats.hpp"
#include "corpus/corpus.hpp"
#include "corpus/groups.hpp"
#include "deps/dependency_graph.hpp"
#include "ir/analyzer.hpp"

using namespace iotsan;

int main() {
  std::printf("=== Table 7a: scalability with dependency graphs ===\n\n");
  std::printf("%-8s %-14s %-10s %s\n", "Group", "Original Size", "New Size",
              "Scale Ratio");

  double ratio_sum = 0;
  int group_index = 0;
  for (const corpus::SystemUnderTest& sut : corpus::ExpertGroups()) {
    ++group_index;
    std::vector<ir::AnalyzedApp> apps;
    for (const config::AppConfig& instance : sut.deployment.apps) {
      const corpus::CorpusApp* base = corpus::FindApp(instance.app);
      std::string source;
      if (base != nullptr) {
        source = base->source;
      } else {
        source = sut.extra_sources.at(instance.app);
      }
      apps.push_back(ir::AnalyzeSource(source, instance.app));
    }
    deps::ScaleStats stats = deps::ComputeScaleStats(apps);
    ratio_sum += stats.ratio;
    std::printf("%-8d %-14d %-10d %.1f\n", group_index, stats.original_size,
                stats.new_size, stats.ratio);
    json::Object payload;
    payload["original_size"] = stats.original_size;
    payload["new_size"] = stats.new_size;
    payload["scale_ratio"] = stats.ratio;
    bench::EmitStatsJson("table7a", "group=" + std::to_string(group_index),
                         std::move(payload));
  }
  std::printf("%-8s %-14s %-10s %.1f\n", "", "", "Mean",
              ratio_sum / group_index);

  std::printf("\npaper expectation (Table 7a): per-group ratios "
              "3.4/5.4/1.5/2.5/2.2/5.7, mean 3.4x.\n  Shape: every group "
              "shrinks; the mean reduction is severalfold.\n");
  return 0;
}
