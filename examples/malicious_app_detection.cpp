// Vet a new app before installing it (the paper's §9 Output Analyzer):
// enumerate its possible configurations, verify each alone and jointly
// with the installed apps, and attribute it as malicious / bad /
// misconfigurable / clean.
//
//   $ ./malicious_app_detection                  # vet the demo attack app
//   $ ./malicious_app_detection "Big Turn On"    # vet a corpus app by name
#include <cstdio>
#include <string>

#include "attrib/output_analyzer.hpp"
#include "config/builder.hpp"
#include "corpus/corpus.hpp"

using namespace iotsan;

int main(int argc, char** argv) {
  // The user's existing system.
  config::DeploymentBuilder b("my home");
  b.ContactPhone("555-0100");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("smokeDet", "smokeDetector", {"smokeSensor", "coSensor"});
  b.Device("valve1", "waterValve", {"waterValve"});
  b.Device("siren1", "smartAlarm", {"alarmSiren"});
  b.Device("hallMotion", "motionSensor", {"securityMotion"});
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("heaterOutlet", "smartOutlet", {"heaterOutlet"});
  b.Device("panicButton", "buttonController");
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Lock It When I Leave")
      .Devices("people", {"alicePresence"})
      .Devices("locks", {"doorLock"})
      .Text("phone", "555-0100");
  config::Deployment home = b.Build();

  const std::string candidate =
      argc > 1 ? argv[1] : std::string("Sneaky Door Helper");
  const corpus::CorpusApp* app = corpus::FindApp(candidate);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown corpus app '%s'\n", candidate.c_str());
    return 1;
  }

  std::printf("vetting \"%s\" before installation...\n", candidate.c_str());
  std::printf("description: \"%s...\"\n\n",
              app->source.substr(app->source.find("description:") + 14, 60)
                  .c_str());

  attrib::AttributionOptions options;
  options.enumeration.max_configs = 24;
  options.check.max_events = 2;
  attrib::AttributionResult result =
      attrib::AttributeApp(app->source, home, options);

  std::printf("%s\n\n", attrib::FormatAttribution(candidate, result).c_str());
  switch (result.verdict) {
    case attrib::Verdict::kMalicious:
      std::printf("RECOMMENDATION: do not install — every configuration "
                  "drives the system into\nunsafe states on its own.\n");
      break;
    case attrib::Verdict::kBadApp:
      std::printf("RECOMMENDATION: do not install — the app conflicts with "
                  "your installed apps\nin (almost) every "
                  "configuration.\n");
      break;
    case attrib::Verdict::kMisconfiguration:
      std::printf("RECOMMENDATION: installable, but configure carefully — "
                  "%zu safe configuration(s)\nfound, e.g.:\n%s\n",
                  result.safe_configs.size(),
                  result.safe_configs.empty()
                      ? ""
                      : config::DeploymentToJson([&] {
                          config::Deployment d;
                          d.apps.push_back(result.safe_configs.front());
                          return d;
                        }()).Dump(2).c_str());
      break;
    case attrib::Verdict::kClean:
      std::printf("RECOMMENDATION: no violations in any tested "
                  "configuration.\n");
      break;
  }
  return 0;
}
