// Quickstart: check a two-app smart home for safety violations.
//
//   $ ./quickstart
//
// Builds the deployment from the paper's §8 running example — a presence
// sensor, a smart lock, and the apps "Auto Mode Change" + "Unlock Door" —
// runs the model checker, and prints the counter-example for the
// violated property "the main door is locked when no one is at home".
#include <cstdio>

#include "config/builder.hpp"
#include "core/sanitizer.hpp"

int main() {
  using namespace iotsan;

  // 1. Describe the deployment: devices (with property roles) and the
  //    installed apps with their input bindings.  App sources resolve
  //    from the bundled corpus; use Sanitizer::AddAppSource for your own.
  config::DeploymentBuilder home("quickstart home");
  home.Device("alicePresence", "presenceSensor", {"presence"});
  home.Device("doorLock", "smartLock", {"mainDoorLock"});
  home.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  home.App("Unlock Door").Devices("lock1", {"doorLock"});

  // 2. Run the pipeline: parse -> analyze dependencies -> generate the
  //    model -> model-check the built-in safety properties.
  core::Sanitizer sanitizer(home.Build());
  core::SanitizerOptions options;
  options.check.max_events = 3;  // external events per run (Algorithm 1)
  core::SanitizerReport report = sanitizer.Check(options);

  // 3. Inspect the results.
  std::printf("checked %d related set(s), %llu states, %.3fs\n\n",
              report.related_set_count,
              static_cast<unsigned long long>(report.states_explored),
              report.seconds);
  if (report.violations.empty()) {
    std::printf("no safety violations found\n");
    return 0;
  }
  for (const checker::Violation& violation : report.violations) {
    std::printf("%s\n", checker::FormatViolation(violation).c_str());
  }
  return 0;
}
