// Audit a realistic multi-app smart home, the way the paper's service
// would run on a user's deployment (§4 "Our work in perspective"):
//   * dependency analysis (which apps must be co-checked),
//   * safety verification with and without failure modeling,
//   * a generated Promela model for inspection.
//
//   $ ./smart_home_audit [--promela]
#include <cstdio>
#include <cstring>

#include "config/builder.hpp"
#include "core/sanitizer.hpp"
#include "corpus/corpus.hpp"
#include "ir/analyzer.hpp"
#include "model/system_model.hpp"
#include "promela/emitter.hpp"

using namespace iotsan;

namespace {

config::Deployment FamilyHome() {
  config::DeploymentBuilder b("family home");
  b.ContactPhone("555-0100");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("bobPresence", "presenceSensor", {"presence"});
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("hallMotion", "motionSensor", {"securityMotion"});
  b.Device("hallLight", "smartSwitch", {"light"});
  b.Device("bedLight", "smartSwitch", {"light"});
  b.Device("siren", "smartAlarm", {"alarmSiren"});
  b.Device("tempMeas", "temperatureSensor", {"tempSensor"});
  b.Device("heaterOutlet", "smartOutlet", {"heaterOutlet"});

  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence", "bobPresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Lock It When I Leave")
      .Devices("people", {"alicePresence", "bobPresence"})
      .Devices("locks", {"doorLock"})
      .Text("phone", "555-0100");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  b.App("Good Night")
      .Devices("switches", {"hallLight", "bedLight"})
      .Text("sleepMode", "Night")
      .Text("startTime", "22:00");
  b.App("Light Follows Me")
      .Devices("motion1", {"hallMotion"})
      .Number("minutes1", 1)
      .Devices("switches", {"hallLight"});
  b.App("Smart Security")
      .Devices("motions", {"hallMotion"})
      .Devices("contacts", {"frontDoor"})
      .Devices("alarms", {"siren"})
      .Text("armedMode", "Away")
      .Text("phone", "555-0100");
  b.App("It's Too Cold")
      .Devices("temperatureSensor1", {"tempMeas"})
      .Number("temperature1", 65)
      .Devices("switch1", {"heaterOutlet"});
  return b.Build();
}

}  // namespace

int main(int argc, char** argv) {
  const bool emit_promela =
      argc > 1 && std::strcmp(argv[1], "--promela") == 0;
  config::Deployment home = FamilyHome();

  core::Sanitizer sanitizer(home);
  core::SanitizerOptions options;
  options.check.max_events = 3;

  std::printf("=== auditing \"%s\": %zu devices, %zu apps ===\n\n",
              home.name.c_str(), home.devices.size(), home.apps.size());

  core::SanitizerReport report = sanitizer.Check(options);
  std::printf("dependency analysis: %d handlers -> %d related sets "
              "(largest %d handlers, ratio %.1f)\n",
              report.scale.original_size, report.related_set_count,
              report.scale.new_size, report.scale.ratio);
  std::printf("explored %llu states in %.3fs\n\n",
              static_cast<unsigned long long>(report.states_explored),
              report.seconds);

  std::printf("--- violations (no failures) ---\n");
  for (const checker::Violation& violation : report.violations) {
    std::printf("%s\n", checker::FormatViolation(violation).c_str());
  }

  options.check.model_failures = true;
  options.check.max_events = 2;
  core::SanitizerReport failure_report = sanitizer.Check(options);
  std::printf("--- additional findings with device/communication failures "
              "---\n");
  for (const checker::Violation& violation : failure_report.violations) {
    if (report.HasViolation(violation.property_id)) continue;
    std::printf("%s\n", checker::FormatViolation(violation).c_str());
  }

  if (emit_promela) {
    // Emit the generated Promela model for the whole system (the
    // Translator's output, §6/§8).
    std::vector<ir::AnalyzedApp> apps;
    for (const config::AppConfig& instance : home.apps) {
      apps.push_back(ir::AnalyzeSource(
          corpus::FindApp(instance.app)->source, instance.app));
    }
    model::SystemModel model(home, std::move(apps));
    std::printf("--- Promela model ---\n%s",
                promela::EmitPromela(model).c_str());
  }
  return 0;
}
