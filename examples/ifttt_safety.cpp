// Check a set of IFTTT applets for unsafe interactions (paper §11):
// each rule is translated into a one-handler app and the full pipeline
// runs unchanged.
//
//   $ ./ifttt_safety
#include <cstdio>

#include "core/sanitizer.hpp"
#include "ifttt/applet.hpp"

using namespace iotsan;

int main() {
  // A small automation setup: arm the siren on motion, hush it by voice,
  // unlock the door when the owner's phone leaves (a typo — they meant
  // "arrives"), and lights on arrival.
  const char* applets_json = R"JSON([
    {"name": "arm siren on motion",
     "trigger": {"service": "smartthings_motion", "event": "active"},
     "action": {"service": "ring_siren", "command": "siren"}},
    {"name": "voice: quiet",
     "trigger": {"service": "amazon_alexa", "event": "alexa be quiet"},
     "action": {"service": "ring_siren", "command": "off"}},
    {"name": "unlock when I leave",
     "trigger": {"service": "smartthings_presence", "event": "notpresent"},
     "action": {"service": "august_lock", "command": "unlock"}},
    {"name": "lights on arrival",
     "trigger": {"service": "smartthings_presence", "event": "present"},
     "action": {"service": "wemo_switch", "command": "on"}}
  ])JSON";

  std::vector<ifttt::Applet> applets = ifttt::ParseApplets(applets_json);
  config::Deployment home = ifttt::BuildDeployment(applets, "ifttt demo");

  std::printf("translated %zu applets into one-handler apps:\n\n",
              applets.size());
  std::printf("%s\n", ifttt::ToSmartScript(applets[2]).c_str());

  core::Sanitizer sanitizer(home);
  for (const auto& [name, source] : ifttt::RuleSources(applets)) {
    sanitizer.AddAppSource(name, source);
  }
  core::SanitizerOptions options;
  options.use_dependency_analysis = false;
  options.check.max_events = 3;
  core::SanitizerReport report = sanitizer.Check(options);

  std::printf("--- verification results ---\n");
  if (report.violations.empty()) {
    std::printf("no violations\n");
  }
  for (const checker::Violation& violation : report.violations) {
    std::printf("%s\n", checker::FormatViolation(violation).c_str());
  }
  return 0;
}
